package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

func testJobs(t *testing.T, names []string) []Job {
	t.Helper()
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	var jobs []Job
	for _, n := range names {
		app, err := workload.Generate(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Memory}})
	}
	return jobs
}

func TestParallelMatchesSequential(t *testing.T) {
	names := []string{"BFS", "GEMM", "SM", "LU", "WC", "MVT"}
	jobs := testJobs(t, names)
	seq := RunAll(jobs, 1)
	par := RunAll(jobs, 4)
	for i := range seq {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d errors: %v / %v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Result.Cycles != par[i].Result.Cycles {
			t.Errorf("%s: parallel cycles %d != sequential %d",
				names[i], par[i].Result.Cycles, seq[i].Result.Cycles)
		}
		if seq[i].Result.App != names[i] || par[i].Result.App != names[i] {
			t.Errorf("job %d: order not preserved (%s/%s)", i,
				seq[i].Result.App, par[i].Result.App)
		}
	}
}

func TestDefaultThreadCount(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM"})
	out := RunAll(jobs, 0) // NumCPU
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	jobs := testJobs(t, []string{"BFS"})
	bad := jobs[0]
	bad.GPU.NumSMs = 0
	out := RunAll([]Job{bad, jobs[0]}, 2)
	if out[0].Err == nil {
		t.Error("invalid job did not error")
	}
	if out[1].Err != nil {
		t.Errorf("valid job errored: %v", out[1].Err)
	}
}

func TestEmptyJobs(t *testing.T) {
	if out := RunAll(nil, 4); len(out) != 0 {
		t.Fatalf("RunAll(nil) returned %d outcomes", len(out))
	}
	if out := Run(nil, 4, Options{FailFast: true}); len(out) != 0 {
		t.Fatalf("Run(nil) returned %d outcomes", len(out))
	}
}

func TestMoreThreadsThanJobs(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM"})
	out := RunAll(jobs, 32)
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
	}
}

// TestMixedFailureOrdering: failed jobs keep their slots, successes keep
// theirs, and every failure is a *JobError naming the right job.
func TestMixedFailureOrdering(t *testing.T) {
	names := []string{"BFS", "GEMM", "SM", "LU", "WC"}
	jobs := testJobs(t, names)
	badIdx := []int{1, 3}
	for _, i := range badIdx {
		jobs[i].GPU.NumSMs = 0 // invalid configuration: job must fail
	}
	out := RunAll(jobs, 3)
	for i, o := range out {
		bad := i == 1 || i == 3
		if bad {
			if o.Err == nil {
				t.Fatalf("job %d should have failed", i)
			}
			var je *JobError
			if !errors.As(o.Err, &je) {
				t.Fatalf("job %d error is %T, want *JobError", i, o.Err)
			}
			if je.JobIndex != i || je.App != names[i] || je.Panicked {
				t.Errorf("job %d identity: index=%d app=%q panicked=%v",
					i, je.JobIndex, je.App, je.Panicked)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Result.App != names[i] {
			t.Errorf("job %d: got result for %s", i, o.Result.App)
		}
	}
}

// TestPanicIsolation: a module that panics mid-simulation fails only its
// own job; neighbors complete, and the outcome records the panic value
// and stack.
func TestPanicIsolation(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM", "SM"})
	jobs[1].Opts.Scheduler = func(smID, subCore int) smcore.Picker {
		panic("injected scheduler fault")
	}
	out := RunAll(jobs, 3)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("neighbor jobs failed: %v / %v", out[0].Err, out[2].Err)
	}
	var je *JobError
	if !errors.As(out[1].Err, &je) {
		t.Fatalf("panicking job error is %T, want *JobError", out[1].Err)
	}
	if !je.Panicked || je.PanicValue != "injected scheduler fault" {
		t.Errorf("panic not captured: panicked=%v value=%v", je.Panicked, je.PanicValue)
	}
	if len(je.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if !strings.Contains(je.Error(), "panic") {
		t.Errorf("Error() does not mention the panic: %s", je.Error())
	}
}

// TestCancellationMidSweep: canceling the sweep context stops running
// jobs within one context-poll granularity and marks undispatched jobs
// skipped.
func TestCancellationMidSweep(t *testing.T) {
	// Slow detailed jobs so cancellation lands mid-simulation.
	gpu := config.RTX2080Ti()
	var jobs []Job
	for i := 0; i < 6; i++ {
		app, err := workload.Generate("SM", 0.3)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Detailed}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out := Run(jobs, 2, Options{Ctx: ctx})
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("sweep took %v after cancellation", elapsed)
	}
	canceled, skipped := 0, 0
	for i, o := range out {
		if o.Err == nil {
			continue // a job may have finished before the cancel landed
		}
		var je *JobError
		if !errors.As(o.Err, &je) {
			t.Fatalf("job %d error is %T, want *JobError", i, o.Err)
		}
		if errors.Is(o.Err, ErrJobSkipped) {
			skipped++
		} else if errors.Is(o.Err, context.Canceled) {
			canceled++
		} else {
			t.Errorf("job %d: unexpected error %v", i, o.Err)
		}
	}
	if canceled+skipped == 0 {
		t.Fatal("cancellation had no effect on any job")
	}
}

func TestPreCanceledContextSkipsAll(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Run(jobs, 2, Options{Ctx: ctx})
	for i, o := range out {
		if !errors.Is(o.Err, ErrJobSkipped) {
			t.Errorf("job %d: want ErrJobSkipped, got %v", i, o.Err)
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("job %d: cause should be context.Canceled, got %v", i, o.Err)
		}
	}
}

func TestJobTimeout(t *testing.T) {
	gpu := config.RTX2080Ti()
	app, err := workload.Generate("SM", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	slow := Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Detailed}}
	out := Run([]Job{slow}, 1, Options{JobTimeout: 5 * time.Millisecond})
	if !errors.Is(out[0].Err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", out[0].Err)
	}
	if !strings.Contains(out[0].Err.Error(), "job timeout") {
		t.Errorf("timeout not attributed to the per-job deadline: %v", out[0].Err)
	}

	// A generous deadline does not interfere with a fast job.
	fast := testJobs(t, []string{"BFS"})
	out = Run(fast, 1, Options{JobTimeout: 5 * time.Minute})
	if out[0].Err != nil {
		t.Fatalf("fast job failed under generous timeout: %v", out[0].Err)
	}
}

// TestFailFast: with one worker the order is deterministic — the first
// failure cancels everything after it.
func TestFailFast(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM", "SM"})
	jobs[0].GPU.NumSMs = 0
	out := Run(jobs, 1, Options{FailFast: true})
	if out[0].Err == nil {
		t.Fatal("bad job did not fail")
	}
	if errors.Is(out[0].Err, ErrJobSkipped) {
		t.Fatalf("first job should fail on its own, not be skipped: %v", out[0].Err)
	}
	for i := 1; i < len(out); i++ {
		if !errors.Is(out[i].Err, ErrJobSkipped) {
			t.Errorf("job %d: want ErrJobSkipped after FailFast, got %v", i, out[i].Err)
		}
	}
}

// TestOnProgress: the callback sees every completion exactly once with
// monotonically increasing Done counts.
func TestOnProgress(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM", "SM"})
	jobs[1].GPU.NumSMs = 0
	var got []Progress
	out := Run(jobs, 2, Options{OnProgress: func(p Progress) { got = append(got, p) }})
	if len(got) != len(jobs) {
		t.Fatalf("OnProgress called %d times, want %d", len(got), len(jobs))
	}
	seen := map[int]bool{}
	for i, p := range got {
		if p.Done != i+1 {
			t.Errorf("progress %d: Done=%d, want %d", i, p.Done, i+1)
		}
		if p.Total != len(jobs) {
			t.Errorf("progress %d: Total=%d, want %d", i, p.Total, len(jobs))
		}
		if seen[p.JobIndex] {
			t.Errorf("job %d reported twice", p.JobIndex)
		}
		seen[p.JobIndex] = true
		if (p.Err != nil) != (out[p.JobIndex].Err != nil) {
			t.Errorf("progress for job %d disagrees with its outcome", p.JobIndex)
		}
	}
	if last := got[len(got)-1]; last.Failed != 1 {
		t.Errorf("final Failed=%d, want 1", last.Failed)
	}
}

// TestOnStartAndResult: OnStart fires exactly once per job before its
// progress report, and each successful Progress carries the same Result
// pointer as the job's Outcome (failed jobs carry nil).
func TestOnStartAndResult(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM", "SM", "LU"})
	jobs[2].GPU.NumSMs = 0
	started := map[int]int{}
	finishedBeforeStart := false
	results := map[int]*sim.Result{}
	out := Run(jobs, 2, Options{
		OnStart: func(i int) { started[i]++ },
		OnProgress: func(p Progress) {
			if started[p.JobIndex] == 0 {
				finishedBeforeStart = true
			}
			results[p.JobIndex] = p.Result
		},
	})
	if finishedBeforeStart {
		t.Error("a job reported progress before its OnStart")
	}
	if len(started) != len(jobs) {
		t.Fatalf("OnStart fired for %d jobs, want %d", len(started), len(jobs))
	}
	for i, n := range started {
		if n != 1 {
			t.Errorf("job %d started %d times, want 1", i, n)
		}
	}
	for i, o := range out {
		if results[i] != o.Result {
			t.Errorf("job %d: Progress.Result != Outcome.Result", i)
		}
		if (o.Err == nil) != (results[i] != nil) {
			t.Errorf("job %d: result nil-ness disagrees with error", i)
		}
	}
}

// TestSweepSurvivesOneBadTrace is the acceptance scenario: a 20-app sweep
// in which one application's trace demands more registers than an SM has
// (the former smcore panic) completes the other 19 jobs and attributes
// the failure to the right job.
func TestSweepSurvivesOneBadTrace(t *testing.T) {
	names := workload.Names()
	if len(names) < 20 {
		t.Fatalf("workload catalog has %d apps, want >= 20", len(names))
	}
	names = names[:20]
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	const badIdx = 7
	var jobs []Job
	for i, n := range names {
		app, err := workload.Generate(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if i == badIdx {
			// One thread's registers exceed the whole SM register file:
			// no block of this kernel can ever be scheduled. Generated
			// traces are memoized and shared, so mutate a clone.
			bad := *app.Kernels[0]
			bad.RegsPerThread = gpu.SM.Registers
			kernels := append([]*trace.Kernel{&bad}, app.Kernels[1:]...)
			app = &trace.App{Name: app.Name, Suite: app.Suite, Kernels: kernels}
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Memory}})
	}
	out := RunAll(jobs, 4)
	for i, o := range out {
		if i == badIdx {
			var je *JobError
			if !errors.As(o.Err, &je) {
				t.Fatalf("bad job error is %T (%v), want *JobError", o.Err, o.Err)
			}
			if je.JobIndex != badIdx || je.App != names[badIdx] || je.GPU != gpu.Name {
				t.Errorf("failure identity: index=%d app=%q gpu=%q",
					je.JobIndex, je.App, je.GPU)
			}
			if je.Panicked {
				t.Error("unschedulable kernel should be a validation error, not a panic")
			}
			if !strings.Contains(o.Err.Error(), "can never be scheduled") {
				t.Errorf("error does not explain the rejection: %v", o.Err)
			}
			continue
		}
		if o.Err != nil {
			t.Fatalf("job %d (%s) failed: %v", i, names[i], o.Err)
		}
		if o.Result == nil || o.Result.App != names[i] {
			t.Fatalf("job %d: missing or misordered result", i)
		}
	}
}

// TestEngineThreadsBudgetSplit: a sweep with Options.EngineThreads gives
// each simulation a sharded engine and divides the job pool accordingly —
// and because the sharded engine is deterministic, every outcome stays
// identical to the serial sweep's.
func TestEngineThreadsBudgetSplit(t *testing.T) {
	names := []string{"BFS", "GEMM", "SM", "LU"}
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	var jobs []Job
	for _, n := range names {
		app, err := workload.Generate(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Basic}})
	}
	base := RunAll(jobs, 4)
	split := Run(jobs, 4, Options{EngineThreads: 2})
	for i := range base {
		if base[i].Err != nil || split[i].Err != nil {
			t.Fatalf("job %d errors: %v / %v", i, base[i].Err, split[i].Err)
		}
		if base[i].Result.Cycles != split[i].Result.Cycles {
			t.Errorf("%s: EngineThreads=2 cycles %d != serial %d",
				names[i], split[i].Result.Cycles, base[i].Result.Cycles)
		}
	}
	// A per-job EngineThreads wins over the sweep-wide one.
	jobs[0].Opts.EngineThreads = 1
	pin := Run(jobs[:1], 1, Options{EngineThreads: 4})
	if pin[0].Err != nil {
		t.Fatal(pin[0].Err)
	}
	if pin[0].Result.Cycles != base[0].Result.Cycles {
		t.Errorf("per-job EngineThreads override diverged: %d != %d",
			pin[0].Result.Cycles, base[0].Result.Cycles)
	}
}

// TestEngineThreadsClampToOneWorker pins the thread-budget clamp: when
// EngineThreads exceeds the whole thread budget (threads/EngineThreads
// rounds to zero), the job pool clamps to a single worker — jobs run
// strictly one at a time at the full shard count, rather than shrinking
// the shard count or deadlocking on an empty pool.
func TestEngineThreadsClampToOneWorker(t *testing.T) {
	names := []string{"BFS", "GEMM", "SM"}
	gpu := config.RTX2080Ti()
	gpu.NumSMs = 4
	gpu.MemPartitions = 2
	var jobs []Job
	for _, n := range names {
		app, err := workload.Generate(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, Job{App: app, GPU: gpu, Opts: sim.Options{Kind: sim.Basic}})
	}
	base := RunAll(jobs, 1)

	// OnStart/OnProgress calls share one lock, so the running gauge is an
	// exact concurrency measurement: with a single clamped worker it can
	// never exceed one.
	var mu sync.Mutex
	running, maxRunning := 0, 0
	out := Run(jobs, 2, Options{
		EngineThreads: 8, // 2/8 -> 0 -> clamped to 1 worker
		OnStart: func(int) {
			mu.Lock()
			running++
			if running > maxRunning {
				maxRunning = running
			}
			mu.Unlock()
		},
		OnProgress: func(Progress) {
			mu.Lock()
			running--
			mu.Unlock()
		},
	})
	if maxRunning != 1 {
		t.Errorf("clamped pool ran %d jobs concurrently, want 1", maxRunning)
	}
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("job %d: %v", i, out[i].Err)
		}
		if out[i].Result.Cycles != base[i].Result.Cycles {
			t.Errorf("%s: clamped run cycles %d != serial %d",
				names[i], out[i].Result.Cycles, base[i].Result.Cycles)
		}
	}
}
