// Package runner implements Swift-Sim's parallel simulation mode (paper
// §IV-B2): because each application simulation is an independent
// simulator instance, a worker pool simulates many applications
// concurrently. On the paper's 50-thread server this contributes about a
// 5× additional speedup for both hybrid configurations; the factor here is
// bounded by the host's core count.
package runner

import (
	"runtime"
	"sync"

	"swiftsim/internal/config"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
)

// Job is one application simulation to run.
type Job struct {
	// App is the trace to simulate.
	App *trace.App
	// GPU is the hardware configuration.
	GPU config.GPU
	// Opts selects the simulator configuration.
	Opts sim.Options
}

// Outcome pairs a job's result with its error.
type Outcome struct {
	Result *sim.Result
	Err    error
}

// RunAll executes jobs on a pool of `threads` workers (threads <= 0 uses
// runtime.NumCPU) and returns outcomes in job order. Each job runs in its
// own simulator instance, so results are bit-identical to sequential runs.
func RunAll(jobs []Job, threads int) []Outcome {
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	if threads > len(jobs) {
		threads = len(jobs)
	}
	out := make([]Outcome, len(jobs))
	if threads <= 1 {
		for i, j := range jobs {
			res, err := sim.Run(j.App, j.GPU, j.Opts)
			out[i] = Outcome{Result: res, Err: err}
		}
		return out
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				j := jobs[i]
				res, err := sim.Run(j.App, j.GPU, j.Opts)
				out[i] = Outcome{Result: res, Err: err}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
