// Package runner implements Swift-Sim's parallel simulation mode (paper
// §IV-B2): because each application simulation is an independent
// simulator instance, a worker pool simulates many applications
// concurrently. On the paper's 50-thread server this contributes about a
// 5× additional speedup for both hybrid configurations; the factor here is
// bounded by the host's core count.
//
// The runner is built to be fault tolerant, so a long-lived sweep service
// can survive individual bad jobs:
//
//   - Every job runs under panic recovery: a panicking simulation is
//     converted into a structured *JobError (with the panic value and
//     stack) on its own Outcome, and the other jobs keep running.
//   - Options.Ctx cancels the whole sweep; jobs already running stop at
//     the engine's next context poll, jobs not yet started are marked
//     skipped.
//   - Options.JobTimeout bounds each job's wall-clock time.
//   - Options.FailFast cancels the rest of the sweep after the first
//     failure.
//   - Options.OnProgress observes completion of each job.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"swiftsim/internal/config"
	"swiftsim/internal/obs"
	"swiftsim/internal/sim"
	"swiftsim/internal/trace"
)

// Job is one application simulation to run.
type Job struct {
	// App is the trace to simulate.
	App *trace.App
	// GPU is the hardware configuration.
	GPU config.GPU
	// Opts selects the simulator configuration.
	Opts sim.Options
}

// Outcome pairs a job's result with its error. A failed job's Err is
// always a *JobError carrying the job's identity; use errors.As to
// recover it and errors.Is to test for causes (context.Canceled,
// context.DeadlineExceeded, ErrJobSkipped, engine.ErrCanceled, ...).
type Outcome struct {
	Result *sim.Result
	Err    error
}

// Options tunes a sweep beyond the worker count.
type Options struct {
	// Ctx cancels the entire sweep when done: running jobs stop at the
	// engine's next context poll (sub-millisecond granularity) and
	// undispatched jobs are marked skipped. nil means context.Background.
	Ctx context.Context
	// JobTimeout bounds each job's wall-clock time (0 = no deadline). A
	// job exceeding it fails with an error wrapping
	// context.DeadlineExceeded; other jobs are unaffected.
	JobTimeout time.Duration
	// FailFast cancels the remaining jobs after the first failure.
	// Already-running jobs stop early; not-yet-started jobs are skipped.
	FailFast bool
	// OnStart, if non-nil, is invoked once per job as a worker picks it up,
	// before the simulation begins (jobs the sweep skips still start — they
	// finish immediately with ErrJobSkipped). Calls are serialized with
	// OnProgress under the same lock; the callback must not call back into
	// the runner. Long-lived services use it to surface "running" state.
	OnStart func(jobIndex int)
	// OnProgress, if non-nil, is invoked once per finished job. Calls are
	// serialized by the runner (no locking needed inside the callback) but
	// may come from any worker goroutine; the callback must not call back
	// into the runner.
	OnProgress func(Progress)
	// Trace is the sweep's observability handle. Each job derives its own
	// per-simulation tracer (pid = job index + 1) sharing the recorder
	// behind it, and the runner itself emits one wall-clock span per job
	// (pid 0, tid = worker, microseconds since sweep start) so parallel
	// utilization is visible in the trace. nil records nothing.
	Trace *obs.Tracer
	// EngineThreads gives each simulation that many engine shards
	// (intra-simulation parallelism; see engine.SetParallel) and shrinks
	// the job-level worker pool to threads/EngineThreads so the sweep's
	// total thread budget stays at `threads`. Few big jobs want a high
	// EngineThreads; many small jobs want 1 (the default), where all
	// parallelism goes to the job pool. When EngineThreads exceeds the
	// thread budget the pool clamps to one worker and jobs run one at a
	// time at the full shard count — the engine's shard count is never
	// reduced to fit, so results stay those of the requested configuration.
	// Jobs whose sim.Options already set EngineThreads keep their own value.
	EngineThreads int
	// EpochCycles sets each simulation's relaxed-sync epoch length (see
	// sim.Options.EpochCycles): > 1 amortizes the intra-simulation barrier
	// over that many cycles, trading a bounded cycle drift for speed.
	// Meaningful only together with EngineThreads > 1. Jobs whose
	// sim.Options already set EpochCycles keep their own value.
	EpochCycles int
	// Sampling, when enabled, runs each simulation in sampled execution
	// mode (launch replay + representative-block sampling; see
	// sim.Sampling). Jobs whose sim.Options already enable Sampling keep
	// their own settings.
	Sampling sim.Sampling
}

// Progress describes one finished job of a sweep.
type Progress struct {
	// JobIndex is the job that just finished; Err is its outcome error.
	JobIndex int
	Err      error
	// Result is the finished job's result (nil when the job failed). It is
	// the same pointer later returned in the job's Outcome, exposed here so
	// streaming consumers — the sweep service's per-job progress feed — can
	// render or persist results as they complete instead of waiting for the
	// whole sweep.
	Result *sim.Result
	// Done and Failed count finished and failed jobs so far; Total is the
	// sweep size.
	Done   int
	Failed int
	Total  int
}

// ErrJobSkipped marks jobs that never started because the sweep was
// canceled first — by Options.Ctx or by FailFast after another job's
// failure. Test with errors.Is on an Outcome's Err.
var ErrJobSkipped = errors.New("runner: job skipped: sweep canceled")

// JobError is the structured error attached to every failed Outcome. It
// identifies the job (index, application, GPU) so failures stay
// attributable in sweeps of hundreds of jobs, and distinguishes ordinary
// simulation errors from recovered panics.
type JobError struct {
	// JobIndex is the job's position in the RunAll slice.
	JobIndex int
	// App and GPU identify the workload and hardware configuration.
	App string
	GPU string
	// Panicked reports that the simulation panicked; PanicValue and Stack
	// hold the recovered value and the goroutine stack at recovery time.
	Panicked   bool
	PanicValue any
	Stack      []byte
	// Err is the underlying cause (nil for panics).
	Err error
}

// Error implements the error interface.
func (e *JobError) Error() string {
	id := fmt.Sprintf("job %d (%s on %s)", e.JobIndex, e.App, e.GPU)
	if e.Panicked {
		return fmt.Sprintf("runner: %s: panic: %v", id, e.PanicValue)
	}
	return fmt.Sprintf("runner: %s: %v", id, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/errors.As.
func (e *JobError) Unwrap() error { return e.Err }

// RunAll executes jobs on a pool of `threads` workers (threads <= 0 uses
// runtime.NumCPU) and returns outcomes in job order. Each job runs in its
// own simulator instance, so results are bit-identical to sequential runs.
// It is Run with default Options.
func RunAll(jobs []Job, threads int) []Outcome {
	return Run(jobs, threads, Options{})
}

// Run executes jobs on a pool of `threads` workers (threads <= 0 uses
// runtime.NumCPU) under opts and returns outcomes in job order. One bad
// job — an invalid trace, a panicking module, a deadline overrun — fails
// only its own Outcome; the rest of the sweep completes normally unless
// FailFast is set.
func Run(jobs []Job, threads int, opts Options) []Outcome {
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	// Split the thread budget between the two levels of parallelism: with
	// EngineThreads shards inside each simulation, only threads/EngineThreads
	// jobs run concurrently.
	if opts.EngineThreads > 1 {
		threads /= opts.EngineThreads
		if threads < 1 {
			threads = 1
		}
	}
	if threads > len(jobs) {
		threads = len(jobs)
	}
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out
	}

	parent := opts.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var mu sync.Mutex
	var done, failed int
	finish := func(i int, o Outcome) {
		out[i] = o
		mu.Lock()
		defer mu.Unlock()
		done++
		if o.Err != nil {
			failed++
			if opts.FailFast {
				cancel()
			}
		}
		if opts.OnProgress != nil {
			opts.OnProgress(Progress{
				JobIndex: i, Err: o.Err, Result: o.Result,
				Done: done, Failed: failed, Total: len(jobs),
			})
		}
	}
	start := func(i int) {
		if opts.OnStart == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		opts.OnStart(i)
	}

	// exec runs one job with its wall-clock trace span. Emitting on the
	// shared parent tracer from worker goroutines is safe: the tracer's
	// fields are immutable and the recorder is concurrency-safe.
	sweepStart := time.Now()
	exec := func(worker, i int) Outcome {
		jobStart := time.Since(sweepStart)
		o := runJob(ctx, i, jobs[i], &opts)
		if opts.Trace.Enabled(obs.KernelLevel) {
			failedArg := uint64(0)
			if o.Err != nil {
				failedArg = 1
			}
			opts.Trace.Emit(obs.Event{
				Name: jobApp(jobs[i]) + " on " + jobs[i].GPU.Name, Cat: "job",
				Ph: obs.PhaseSpan, Ts: uint64(jobStart.Microseconds()),
				Dur: uint64((time.Since(sweepStart) - jobStart).Microseconds()),
				Tid: int32(worker), Arg1Name: "job", Arg1: uint64(i),
				Arg2Name: "failed", Arg2: failedArg,
			})
		}
		return o
	}

	if threads <= 1 {
		for i := range jobs {
			start(i)
			finish(i, exec(0, i))
		}
		return out
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range next {
				start(i)
				finish(i, exec(worker, i))
			}
		}(w)
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// runJob executes one job with panic isolation and a per-job deadline. It
// never panics: any failure, including a recovered panic, is returned as a
// *JobError on the Outcome. With tracing on, the job's simulation records
// into its own pid derived from the sweep tracer (j is a copy, so setting
// its Opts.Trace never mutates the caller's Job slice).
func runJob(ctx context.Context, i int, j Job, opts *Options) Outcome {
	timeout := opts.JobTimeout
	if tr := opts.Trace; tr != nil {
		// Pids are parent-relative so a caller holding a WithPid-derived
		// tracer (the sweep service gives each sweep its own pid block)
		// gets disjoint per-job pids; with the default parent pid 0 the
		// jobs land on pids 1..N as before.
		j.Opts.Trace = tr.WithPid(int(tr.Pid()) + i + 1)
	}
	if opts.EngineThreads > 0 && j.Opts.EngineThreads == 0 {
		j.Opts.EngineThreads = opts.EngineThreads
	}
	if opts.EpochCycles > 0 && j.Opts.EpochCycles == 0 {
		j.Opts.EpochCycles = opts.EpochCycles
	}
	if opts.Sampling.Enabled && !j.Opts.Sampling.Enabled {
		j.Opts.Sampling = opts.Sampling
	}
	jobErr := func(cause error) *JobError {
		return &JobError{JobIndex: i, App: jobApp(j), GPU: j.GPU.Name, Err: cause}
	}
	if cerr := ctx.Err(); cerr != nil {
		// The sweep was canceled before this job started.
		return Outcome{Err: jobErr(fmt.Errorf("%w: %w", ErrJobSkipped, cerr))}
	}
	jctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var res *sim.Result
	var err error
	panicked := func() (je *JobError) {
		defer func() {
			if r := recover(); r != nil {
				je = &JobError{
					JobIndex: i, App: jobApp(j), GPU: j.GPU.Name,
					Panicked: true, PanicValue: r, Stack: debug.Stack(),
				}
			}
		}()
		res, err = sim.RunCtx(jctx, j.App, j.GPU, j.Opts)
		return nil
	}()
	switch {
	case panicked != nil:
		return Outcome{Err: panicked}
	case err != nil:
		// Attribute deadline overruns to the per-job timeout when the
		// sweep context itself is still live.
		if timeout > 0 && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			err = fmt.Errorf("job timeout %v exceeded: %w", timeout, err)
		}
		return Outcome{Err: jobErr(err)}
	default:
		return Outcome{Result: res}
	}
}

// jobApp names a job's application, tolerating nil traces.
func jobApp(j Job) string {
	if j.App == nil {
		return "<nil app>"
	}
	return j.App.Name
}
