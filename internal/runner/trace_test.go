package runner

import (
	"bytes"
	"encoding/json"
	"testing"

	"swiftsim/internal/obs"
)

// TestConcurrentSweepTracing runs a parallel sweep with a shared tracer:
// every worker emits job spans and every simulation records into its own
// derived pid through the one recorder. Run under -race (the tier-1
// scope), this is the integration check that the tracer's immutable
// fields and the recorder's locking make concurrent tracing safe.
func TestConcurrentSweepTracing(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "HOTSPOT", "NW", "GEMM", "ADI", "SM"})
	var buf bytes.Buffer
	stream := obs.NewJSONStream(&buf)
	ring := obs.NewRing(0)
	tr := obs.New(obs.Multi(stream, ring), obs.KernelLevel)

	for _, o := range Run(jobs, 4, Options{Trace: tr}) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}

	// The streamed output must be valid JSON even after concurrent writes.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("streamed trace is not valid JSON: %v", err)
	}

	// Every job must have its runner span (pid 0) and at least one kernel
	// span in its own derived pid.
	jobSpans := map[int]bool{}
	kernelPids := map[int]bool{}
	for _, ev := range ring.Events() {
		switch {
		case ev.Cat == "job" && ev.Ph == obs.PhaseSpan:
			if ev.Pid != 0 {
				t.Errorf("job span in pid %d, want 0", ev.Pid)
			}
			jobSpans[int(ev.Arg1)] = true
		case ev.Cat == "kernel" && ev.Ph == obs.PhaseSpan:
			kernelPids[int(ev.Pid)] = true
		}
	}
	for i := range jobs {
		if !jobSpans[i] {
			t.Errorf("job %d has no runner span", i)
		}
		if !kernelPids[i+1] {
			t.Errorf("job %d recorded no kernel spans in pid %d", i, i+1)
		}
	}
}

// TestTracingDoesNotChangeOutcomes re-runs a traced sweep against an
// untraced one and requires identical results — the runner-level half of
// the observation-only contract.
func TestTracingDoesNotChangeOutcomes(t *testing.T) {
	jobs := testJobs(t, []string{"BFS", "GEMM", "SM"})
	plain := Run(jobs, 2, Options{})
	traced := Run(jobs, 2, Options{Trace: obs.New(obs.NewRing(0), obs.RequestLevel)})
	for i := range jobs {
		if plain[i].Err != nil || traced[i].Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, plain[i].Err, traced[i].Err)
		}
		if plain[i].Result.Cycles != traced[i].Result.Cycles {
			t.Errorf("job %d: cycles %d (untraced) != %d (traced)",
				i, plain[i].Result.Cycles, traced[i].Result.Cycles)
		}
	}
}
