package config

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The configuration file format is a flat "section.key = value" text file,
// one assignment per line, with '#' comments, mirroring the style of
// Accel-Sim configuration files. Marshal and Parse round-trip a GPU exactly.

// Marshal renders g as configuration-file text.
func Marshal(g GPU) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# Swift-Sim hardware configuration: %s\n", g.Name)
	kv := flatten(g)
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s = %s\n", k, kv[k])
	}
	return []byte(b.String())
}

// WriteFile writes g to path in configuration-file format.
func WriteFile(path string, g GPU) error {
	return os.WriteFile(path, Marshal(g), 0o644)
}

// LoadFile reads and validates a configuration file. An optional
// "gpu.base" key names a preset to start from, so files may override only a
// few parameters.
func LoadFile(path string) (GPU, error) {
	f, err := os.Open(path)
	if err != nil {
		return GPU{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	g, err := Parse(f)
	if err != nil {
		return GPU{}, fmt.Errorf("config: %s: %w", path, err)
	}
	return g, nil
}

// Parse reads configuration text from r and returns the validated GPU.
func Parse(r io.Reader) (GPU, error) {
	kv := make(map[string]string)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return GPU{}, fmt.Errorf("line %d: expected key = value, got %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if key == "" || val == "" {
			return GPU{}, fmt.Errorf("line %d: empty key or value in %q", lineNo, line)
		}
		if _, dup := kv[key]; dup {
			return GPU{}, fmt.Errorf("line %d: duplicate key %q", lineNo, key)
		}
		kv[key] = val
	}
	if err := sc.Err(); err != nil {
		return GPU{}, err
	}

	var g GPU
	if base, ok := kv["gpu.base"]; ok {
		pg, ok := Preset(base)
		if !ok {
			return GPU{}, fmt.Errorf("gpu.base: unknown preset %q (have %v)", base, PresetNames())
		}
		g = pg
		delete(kv, "gpu.base")
	}
	if err := apply(&g, kv); err != nil {
		return GPU{}, err
	}
	if err := g.Validate(); err != nil {
		return GPU{}, err
	}
	return g, nil
}

func flatten(g GPU) map[string]string {
	kv := map[string]string{
		"gpu.name":                   g.Name,
		"gpu.num_sms":                strconv.Itoa(g.NumSMs),
		"gpu.mem_partitions":         strconv.Itoa(g.MemPartitions),
		"gpu.dram_latency":           strconv.Itoa(g.DRAMLatency),
		"gpu.dram_banks":             strconv.Itoa(g.DRAMBanksPerPartition),
		"gpu.dram_row_hit_latency":   strconv.Itoa(g.DRAMRowHitLatency),
		"gpu.noc_latency":            strconv.Itoa(g.NoCLatency),
		"gpu.noc_flit_bytes":         strconv.Itoa(g.NoCFlitBytes),
		"gpu.noc_topology":           topologyName(g.NoCTopology),
		"sm.sub_cores":               strconv.Itoa(g.SM.SubCores),
		"sm.warp_size":               strconv.Itoa(g.SM.WarpSize),
		"sm.max_warps":               strconv.Itoa(g.SM.MaxWarps),
		"sm.max_blocks":              strconv.Itoa(g.SM.MaxBlocks),
		"sm.registers":               strconv.Itoa(g.SM.Registers),
		"sm.shared_mem_bytes":        strconv.Itoa(g.SM.SharedMemBytes),
		"sm.scheduler":               g.SM.Scheduler.String(),
		"sm.schedulers_per_sub_core": strconv.Itoa(g.SM.SchedulersPerSubCore),
		"sm.int_lanes":               strconv.Itoa(g.SM.IntLanes),
		"sm.sp_lanes":                strconv.Itoa(g.SM.SPLanes),
		"sm.dp_lanes":                strconv.Itoa(g.SM.DPLanes),
		"sm.dp_lanes_half":           strconv.FormatBool(g.SM.DPLanesHalf),
		"sm.sfu_lanes":               strconv.Itoa(g.SM.SFULanes),
		"sm.ldst_lanes":              strconv.Itoa(g.SM.LDSTLanes),
		"sm.int_latency":             strconv.Itoa(g.SM.IntLatency),
		"sm.sp_latency":              strconv.Itoa(g.SM.SPLatency),
		"sm.dp_latency":              strconv.Itoa(g.SM.DPLatency),
		"sm.sfu_latency":             strconv.Itoa(g.SM.SFULatency),
		"sm.shared_mem_latency":      strconv.Itoa(g.SM.SharedMemLatency),
	}
	for level, c := range map[string]Cache{"l1": g.L1, "l2": g.L2} {
		kv[level+".sets"] = strconv.Itoa(c.Sets)
		kv[level+".ways"] = strconv.Itoa(c.Ways)
		kv[level+".line_bytes"] = strconv.Itoa(c.LineBytes)
		kv[level+".sector_bytes"] = strconv.Itoa(c.SectorBytes)
		kv[level+".banks"] = strconv.Itoa(c.Banks)
		kv[level+".mshr_entries"] = strconv.Itoa(c.MSHREntries)
		kv[level+".mshr_max_merge"] = strconv.Itoa(c.MSHRMaxMerge)
		kv[level+".hit_latency"] = strconv.Itoa(c.HitLatency)
		kv[level+".replacement"] = c.Replacement.String()
		kv[level+".write_back"] = strconv.FormatBool(c.WriteBack)
		kv[level+".streaming"] = strconv.FormatBool(c.Streaming)
		kv[level+".throughput"] = strconv.Itoa(c.Throughput)
	}
	return kv
}

func apply(g *GPU, kv map[string]string) error {
	for key, val := range kv {
		if err := applyOne(g, key, val); err != nil {
			return err
		}
	}
	return nil
}

func applyOne(g *GPU, key, val string) error {
	intField := func(dst *int) error {
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("%s: %q is not an integer", key, val)
		}
		*dst = n
		return nil
	}
	boolField := func(dst *bool) error {
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("%s: %q is not a boolean", key, val)
		}
		*dst = b
		return nil
	}

	if c, rest, ok := cacheKey(g, key); ok {
		switch rest {
		case "sets":
			return intField(&c.Sets)
		case "ways":
			return intField(&c.Ways)
		case "line_bytes":
			return intField(&c.LineBytes)
		case "sector_bytes":
			return intField(&c.SectorBytes)
		case "banks":
			return intField(&c.Banks)
		case "mshr_entries":
			return intField(&c.MSHREntries)
		case "mshr_max_merge":
			return intField(&c.MSHRMaxMerge)
		case "hit_latency":
			return intField(&c.HitLatency)
		case "replacement":
			r, err := ParseReplacement(val)
			if err != nil {
				return fmt.Errorf("%s: %w", key, err)
			}
			c.Replacement = r
			return nil
		case "write_back":
			return boolField(&c.WriteBack)
		case "streaming":
			return boolField(&c.Streaming)
		case "throughput":
			return intField(&c.Throughput)
		}
		return fmt.Errorf("unknown configuration key %q", key)
	}

	switch key {
	case "gpu.name":
		g.Name = val
		return nil
	case "gpu.num_sms":
		return intField(&g.NumSMs)
	case "gpu.mem_partitions":
		return intField(&g.MemPartitions)
	case "gpu.dram_latency":
		return intField(&g.DRAMLatency)
	case "gpu.dram_banks":
		return intField(&g.DRAMBanksPerPartition)
	case "gpu.dram_row_hit_latency":
		return intField(&g.DRAMRowHitLatency)
	case "gpu.noc_latency":
		return intField(&g.NoCLatency)
	case "gpu.noc_flit_bytes":
		return intField(&g.NoCFlitBytes)
	case "gpu.noc_topology":
		g.NoCTopology = val
		return nil
	case "sm.sub_cores":
		return intField(&g.SM.SubCores)
	case "sm.warp_size":
		return intField(&g.SM.WarpSize)
	case "sm.max_warps":
		return intField(&g.SM.MaxWarps)
	case "sm.max_blocks":
		return intField(&g.SM.MaxBlocks)
	case "sm.registers":
		return intField(&g.SM.Registers)
	case "sm.shared_mem_bytes":
		return intField(&g.SM.SharedMemBytes)
	case "sm.scheduler":
		p, err := ParseSchedPolicy(val)
		if err != nil {
			return err
		}
		g.SM.Scheduler = p
		return nil
	case "sm.schedulers_per_sub_core":
		return intField(&g.SM.SchedulersPerSubCore)
	case "sm.int_lanes":
		return intField(&g.SM.IntLanes)
	case "sm.sp_lanes":
		return intField(&g.SM.SPLanes)
	case "sm.dp_lanes":
		return intField(&g.SM.DPLanes)
	case "sm.dp_lanes_half":
		return boolField(&g.SM.DPLanesHalf)
	case "sm.sfu_lanes":
		return intField(&g.SM.SFULanes)
	case "sm.ldst_lanes":
		return intField(&g.SM.LDSTLanes)
	case "sm.int_latency":
		return intField(&g.SM.IntLatency)
	case "sm.sp_latency":
		return intField(&g.SM.SPLatency)
	case "sm.dp_latency":
		return intField(&g.SM.DPLatency)
	case "sm.sfu_latency":
		return intField(&g.SM.SFULatency)
	case "sm.shared_mem_latency":
		return intField(&g.SM.SharedMemLatency)
	}
	return fmt.Errorf("unknown configuration key %q", key)
}

// topologyName canonicalizes the empty default for serialization.
func topologyName(t string) string {
	if t == "" {
		return "crossbar"
	}
	return t
}

func cacheKey(g *GPU, key string) (*Cache, string, bool) {
	switch {
	case strings.HasPrefix(key, "l1."):
		return &g.L1, key[len("l1."):], true
	case strings.HasPrefix(key, "l2."):
		return &g.L2, key[len("l2."):], true
	}
	return nil, "", false
}
