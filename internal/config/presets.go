package config

// Presets for the three NVIDIA GPUs validated in the paper (Tables I and
// II). Parameters not disclosed in the paper follow the Accel-Sim
// configuration files for the corresponding architectures.

// RTX2080Ti returns the NVIDIA RTX 2080 Ti (Turing, TU102) configuration of
// Table II: 68 SMs, 4 sub-cores each, GTO scheduling, sectored
// streaming L1, 22 memory partitions.
func RTX2080Ti() GPU {
	return GPU{
		Name:   "RTX2080Ti",
		NumSMs: 68,
		SM: SM{
			SubCores:             4,
			WarpSize:             32,
			MaxWarps:             32,
			MaxBlocks:            16,
			Registers:            65536,
			SharedMemBytes:       65536,
			Scheduler:            GTO,
			SchedulersPerSubCore: 1,
			IntLanes:             16,
			SPLanes:              16,
			DPLanes:              1,
			DPLanesHalf:          true, // Table II: DP:0.5x
			SFULanes:             4,
			LDSTLanes:            4,
			IntLatency:           4,
			SPLatency:            4,
			DPLatency:            40,
			SFULatency:           20,
			SharedMemLatency:     24,
		},
		L1: Cache{
			Sets:         64,
			Ways:         8, // 64 KiB
			LineBytes:    128,
			SectorBytes:  32,
			Banks:        4,
			MSHREntries:  256,
			MSHRMaxMerge: 8,
			HitLatency:   32,
			Replacement:  LRU,
			WriteBack:    false,
			Streaming:    true,
			Throughput:   1,
		},
		L2: Cache{
			// 5.5 MiB total over 22 partitions = 256 KiB per slice.
			Sets:         512,
			Ways:         4,
			LineBytes:    128,
			SectorBytes:  32,
			Banks:        2,
			MSHREntries:  192,
			MSHRMaxMerge: 4,
			HitLatency:   188,
			Replacement:  LRU,
			WriteBack:    true,
			Streaming:    false,
			Throughput:   1,
		},
		MemPartitions:         22,
		DRAMLatency:           227,
		DRAMBanksPerPartition: 16,
		DRAMRowHitLatency:     100,
		NoCLatency:            12,
		NoCFlitBytes:          32,
		NoCTopology:           "crossbar",
	}
}

// RTX3060 returns the NVIDIA RTX 3060 (Ampere, GA106) configuration of
// Table I: 28 SMs, 3 MiB L2.
func RTX3060() GPU {
	g := RTX2080Ti()
	g.Name = "RTX3060"
	g.NumSMs = 28
	// GA106: 3584 CUDA cores over 28 SMs = 128/SM = 32 SP lanes per
	// sub-core (Ampere doubled the FP32 datapath).
	g.SM.SPLanes = 32
	g.SM.MaxWarps = 48
	g.SM.SharedMemBytes = 102400
	// 3 MiB L2 over 12 partitions (192-bit bus) = 256 KiB per slice.
	g.MemPartitions = 12
	g.L2.Sets = 512
	g.L2.Ways = 4
	g.DRAMLatency = 242
	g.L2.HitLatency = 204
	return g
}

// RTX3090 returns the NVIDIA RTX 3090 (Ampere, GA102) configuration of
// Table I: 82 SMs, 6 MiB L2.
func RTX3090() GPU {
	g := RTX2080Ti()
	g.Name = "RTX3090"
	g.NumSMs = 82
	// GA102: 10496 CUDA cores over 82 SMs = 128/SM.
	g.SM.SPLanes = 32
	g.SM.MaxWarps = 48
	g.SM.SharedMemBytes = 102400
	// 6 MiB L2 over 24 partitions (384-bit bus) = 256 KiB per slice.
	g.MemPartitions = 24
	g.L2.Sets = 512
	g.L2.Ways = 4
	g.DRAMLatency = 242
	g.L2.HitLatency = 204
	return g
}

// Preset returns the named preset configuration, or false if the name is
// unknown. Recognized names are "RTX2080Ti", "RTX3060" and "RTX3090".
func Preset(name string) (GPU, bool) {
	switch name {
	case "RTX2080Ti", "rtx2080ti", "2080ti":
		return RTX2080Ti(), true
	case "RTX3060", "rtx3060", "3060":
		return RTX3060(), true
	case "RTX3090", "rtx3090", "3090":
		return RTX3090(), true
	default:
		return GPU{}, false
	}
}

// PresetNames lists the available preset configuration names in a stable
// order.
func PresetNames() []string { return []string{"RTX2080Ti", "RTX3060", "RTX3090"} }
