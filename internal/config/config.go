// Package config implements the Hardware Configuration Collector of the
// Swift-Sim frontend: typed GPU hardware descriptions, a text configuration
// file format, validation, and presets for the three NVIDIA GPUs the paper
// evaluates (RTX 2080 Ti, RTX 3060, RTX 3090).
package config

import (
	"fmt"
)

// Replacement selects a cache replacement policy. The paper motivates
// Swift-Sim partly by noting that analytical cache models are typically
// locked to LRU; the cycle-accurate cache module supports all three.
type Replacement int

const (
	// LRU evicts the least recently used line.
	LRU Replacement = iota
	// FIFO evicts lines in fill order.
	FIFO
	// Random evicts a pseudo-random line (deterministic xorshift so
	// simulations stay reproducible).
	Random
)

// String returns the canonical configuration-file spelling of r.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "RANDOM"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// ParseReplacement converts a configuration-file spelling into a Replacement.
func ParseReplacement(s string) (Replacement, error) {
	switch s {
	case "LRU", "lru":
		return LRU, nil
	case "FIFO", "fifo":
		return FIFO, nil
	case "RANDOM", "random", "Random":
		return Random, nil
	default:
		return 0, fmt.Errorf("config: unknown replacement policy %q", s)
	}
}

// SchedPolicy selects the warp scheduling policy of the Warp Scheduler &
// Dispatch module.
type SchedPolicy int

const (
	// GTO is greedy-then-oldest: keep issuing from the last warp until it
	// stalls, then fall back to the oldest ready warp.
	GTO SchedPolicy = iota
	// LRR is loose round-robin over ready warps.
	LRR
	// OldestFirst always issues from the oldest ready warp.
	OldestFirst
)

// String returns the canonical configuration-file spelling of p.
func (p SchedPolicy) String() string {
	switch p {
	case GTO:
		return "GTO"
	case LRR:
		return "LRR"
	case OldestFirst:
		return "OLDEST"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// ParseSchedPolicy converts a configuration-file spelling into a SchedPolicy.
func ParseSchedPolicy(s string) (SchedPolicy, error) {
	switch s {
	case "GTO", "gto":
		return GTO, nil
	case "LRR", "lrr":
		return LRR, nil
	case "OLDEST", "oldest", "OldestFirst":
		return OldestFirst, nil
	default:
		return 0, fmt.Errorf("config: unknown scheduler policy %q", s)
	}
}

// Cache describes one level of the sectored cache hierarchy.
type Cache struct {
	// Sets and Ways give the organization; capacity is
	// Sets*Ways*LineBytes.
	Sets int
	Ways int
	// LineBytes is the cache line size; SectorBytes the sector size.
	// Fills and misses are tracked per sector (Table II: 128 B lines with
	// 32 B sectors at both levels).
	LineBytes   int
	SectorBytes int
	// Banks is the number of independently addressed banks; concurrent
	// accesses to the same bank in one cycle conflict.
	Banks int
	// MSHREntries is the number of miss-status holding registers;
	// MSHRMaxMerge the maximum number of requests merged into one entry.
	MSHREntries  int
	MSHRMaxMerge int
	// HitLatency is the load-to-use latency of a hit, in core cycles.
	HitLatency int
	// Replacement selects the replacement policy.
	Replacement Replacement
	// WriteBack selects write-back (true, L2) or write-through (false,
	// L1) behaviour.
	WriteBack bool
	// Streaming marks the L1 streaming behaviour of Turing/Ampere L1s:
	// misses do not reserve a line and bypass allocation when the MSHR
	// would otherwise stall allocation.
	Streaming bool
	// Throughput is the number of accesses each bank accepts per cycle.
	Throughput int
}

// SizeBytes returns the total capacity of the cache in bytes.
func (c Cache) SizeBytes() int { return c.Sets * c.Ways * c.LineBytes }

// SectorsPerLine returns the number of sectors in one line.
func (c Cache) SectorsPerLine() int { return c.LineBytes / c.SectorBytes }

// SM describes one streaming multiprocessor and its sub-cores.
type SM struct {
	// SubCores is the number of sub-cores (warp-scheduler partitions).
	SubCores int
	// WarpSize is the number of threads per warp.
	WarpSize int
	// MaxWarps and MaxBlocks bound concurrent residency per SM.
	MaxWarps  int
	MaxBlocks int
	// Registers and SharedMemBytes are the per-SM register file size (in
	// 32-bit registers) and shared-memory capacity.
	Registers      int
	SharedMemBytes int
	// Scheduler is the warp-scheduling policy used by every sub-core.
	Scheduler SchedPolicy
	// SchedulersPerSubCore is the number of warp schedulers per sub-core
	// (1 on all modeled GPUs).
	SchedulersPerSubCore int

	// Execution-unit lane counts per sub-core. A warp instruction of
	// width WarpSize issued to a unit with L lanes occupies the unit for
	// ceil(WarpSize/L) cycles (its initiation interval). DPLanesHalf
	// handles the "DP:0.5x" entry of Table II: when true, DPLanes is the
	// lane count per *two* sub-cores.
	IntLanes    int
	SPLanes     int
	DPLanes     int
	DPLanesHalf bool
	SFULanes    int
	LDSTLanes   int

	// Fixed execution latencies per unit class, in cycles.
	IntLatency int
	SPLatency  int
	DPLatency  int
	SFULatency int
	// SharedMemLatency is the access latency of shared memory.
	SharedMemLatency int
}

// IssueInterval returns the initiation interval in cycles for a warp
// instruction executed on a unit with the given lane count.
func (s SM) IssueInterval(lanes int) int {
	if lanes <= 0 {
		return s.WarpSize * 2
	}
	return (s.WarpSize + lanes - 1) / lanes
}

// GPU is the complete hardware description consumed by the performance
// model.
type GPU struct {
	// Name identifies the configuration (e.g. "RTX2080Ti").
	Name string
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// SM describes each streaming multiprocessor.
	SM SM
	// L1 describes the per-SM L1 data cache; L2 one bank (slice) of the
	// shared L2. The L2 has one slice per memory partition.
	L1 Cache
	L2 Cache
	// MemPartitions is the number of memory partitions (each pairs an L2
	// slice with a DRAM channel).
	MemPartitions int
	// DRAMLatency is the average DRAM access latency in core cycles
	// (Table II "Memory: 227 cycles").
	DRAMLatency int
	// DRAMBanksPerPartition is the number of DRAM banks behind each
	// partition.
	DRAMBanksPerPartition int
	// DRAMRowHitLatency is the latency of a row-buffer hit.
	DRAMRowHitLatency int
	// NoCLatency is the one-way interconnect traversal latency in cycles
	// (crossbar) or per-hop latency (ring).
	NoCLatency int
	// NoCFlitBytes is the per-cycle per-port payload of the crossbar.
	NoCFlitBytes int
	// NoCTopology selects the interconnect module: "crossbar" (default,
	// empty string) or "ring". Swapping topologies changes nothing else —
	// the modular-NoC exploration the paper contrasts against analytical
	// NoC models.
	NoCTopology string
}

// CUDACores returns the marketing "CUDA core" count implied by the
// configuration (SMs × sub-cores × SP lanes), as listed in Table I.
func (g GPU) CUDACores() int { return g.NumSMs * g.SM.SubCores * g.SM.SPLanes }

// L2TotalBytes returns the total L2 capacity across all partitions.
func (g GPU) L2TotalBytes() int { return g.L2.SizeBytes() * g.MemPartitions }

// Validate checks the configuration for internal consistency and returns a
// descriptive error for the first problem found.
func (g GPU) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("config: missing GPU name")
	}
	if g.NumSMs <= 0 {
		return fmt.Errorf("config %s: NumSMs must be positive, got %d", g.Name, g.NumSMs)
	}
	if g.MemPartitions <= 0 {
		return fmt.Errorf("config %s: MemPartitions must be positive, got %d", g.Name, g.MemPartitions)
	}
	if g.DRAMLatency <= 0 {
		return fmt.Errorf("config %s: DRAMLatency must be positive, got %d", g.Name, g.DRAMLatency)
	}
	if g.DRAMBanksPerPartition <= 0 {
		return fmt.Errorf("config %s: DRAMBanksPerPartition must be positive, got %d", g.Name, g.DRAMBanksPerPartition)
	}
	if g.NoCLatency < 0 {
		return fmt.Errorf("config %s: NoCLatency must be non-negative, got %d", g.Name, g.NoCLatency)
	}
	if g.NoCFlitBytes <= 0 {
		return fmt.Errorf("config %s: NoCFlitBytes must be positive, got %d", g.Name, g.NoCFlitBytes)
	}
	switch g.NoCTopology {
	case "", "crossbar", "ring":
	default:
		return fmt.Errorf("config %s: unknown NoC topology %q (want crossbar or ring)", g.Name, g.NoCTopology)
	}
	if err := validateSM(g.SM); err != nil {
		return fmt.Errorf("config %s: %w", g.Name, err)
	}
	if err := validateCache("L1", g.L1); err != nil {
		return fmt.Errorf("config %s: %w", g.Name, err)
	}
	if err := validateCache("L2", g.L2); err != nil {
		return fmt.Errorf("config %s: %w", g.Name, err)
	}
	if g.L1.WriteBack {
		return fmt.Errorf("config %s: L1 must be write-through (WriteBack=false)", g.Name)
	}
	return nil
}

func validateSM(s SM) error {
	switch {
	case s.SubCores <= 0:
		return fmt.Errorf("SM.SubCores must be positive, got %d", s.SubCores)
	case s.WarpSize <= 0:
		return fmt.Errorf("SM.WarpSize must be positive, got %d", s.WarpSize)
	case s.MaxWarps <= 0:
		return fmt.Errorf("SM.MaxWarps must be positive, got %d", s.MaxWarps)
	case s.MaxWarps%s.SubCores != 0:
		return fmt.Errorf("SM.MaxWarps (%d) must divide evenly across %d sub-cores", s.MaxWarps, s.SubCores)
	case s.MaxBlocks <= 0:
		return fmt.Errorf("SM.MaxBlocks must be positive, got %d", s.MaxBlocks)
	case s.Registers <= 0:
		return fmt.Errorf("SM.Registers must be positive, got %d", s.Registers)
	case s.SharedMemBytes < 0:
		return fmt.Errorf("SM.SharedMemBytes must be non-negative, got %d", s.SharedMemBytes)
	case s.IntLanes <= 0 || s.SPLanes <= 0 || s.SFULanes <= 0 || s.LDSTLanes <= 0:
		return fmt.Errorf("SM lane counts must be positive (INT=%d SP=%d SFU=%d LDST=%d)",
			s.IntLanes, s.SPLanes, s.SFULanes, s.LDSTLanes)
	case s.DPLanes < 0:
		return fmt.Errorf("SM.DPLanes must be non-negative, got %d", s.DPLanes)
	case s.IntLatency <= 0 || s.SPLatency <= 0 || s.DPLatency <= 0 || s.SFULatency <= 0:
		return fmt.Errorf("SM unit latencies must be positive (INT=%d SP=%d DP=%d SFU=%d)",
			s.IntLatency, s.SPLatency, s.DPLatency, s.SFULatency)
	case s.SharedMemLatency <= 0:
		return fmt.Errorf("SM.SharedMemLatency must be positive, got %d", s.SharedMemLatency)
	}
	return nil
}

func validateCache(level string, c Cache) error {
	switch {
	case c.Sets <= 0 || c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("%s.Sets must be a positive power of two, got %d", level, c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("%s.Ways must be positive, got %d", level, c.Ways)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("%s.LineBytes must be a positive power of two, got %d", level, c.LineBytes)
	case c.SectorBytes <= 0 || c.SectorBytes&(c.SectorBytes-1) != 0:
		return fmt.Errorf("%s.SectorBytes must be a positive power of two, got %d", level, c.SectorBytes)
	case c.SectorBytes > c.LineBytes:
		return fmt.Errorf("%s.SectorBytes (%d) exceeds LineBytes (%d)", level, c.SectorBytes, c.LineBytes)
	case c.LineBytes%c.SectorBytes != 0:
		return fmt.Errorf("%s.LineBytes (%d) not a multiple of SectorBytes (%d)", level, c.LineBytes, c.SectorBytes)
	case c.Banks <= 0 || c.Banks&(c.Banks-1) != 0:
		return fmt.Errorf("%s.Banks must be a positive power of two, got %d", level, c.Banks)
	case c.MSHREntries <= 0:
		return fmt.Errorf("%s.MSHREntries must be positive, got %d", level, c.MSHREntries)
	case c.MSHRMaxMerge <= 0:
		return fmt.Errorf("%s.MSHRMaxMerge must be positive, got %d", level, c.MSHRMaxMerge)
	case c.HitLatency <= 0:
		return fmt.Errorf("%s.HitLatency must be positive, got %d", level, c.HitLatency)
	case c.Throughput <= 0:
		return fmt.Errorf("%s.Throughput must be positive, got %d", level, c.Throughput)
	}
	return nil
}
