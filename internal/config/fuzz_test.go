package config

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadConfig asserts the configuration parser never panics on
// arbitrary text, only ever returning an error, and that any configuration
// it accepts is stable under a Marshal/Parse round trip. Marshal output is
// the comparison form because parsing canonicalizes defaulted fields (the
// empty NoC topology becomes "crossbar").
func FuzzLoadConfig(f *testing.F) {
	for _, name := range PresetNames() {
		g, _ := Preset(name)
		f.Add(string(Marshal(g)))
	}
	f.Add("gpu.base = RTX3060\nsm.max_warps = 32\n")
	f.Add("# only comments\n\n")
	f.Add("key-without-value\n")
	f.Add("gpu.num_sms = \n")
	f.Add("gpu.num_sms = -4\n")
	f.Add("gpu.num_sms = 12\ngpu.num_sms = 13\n")
	f.Add("gpu.base = NoSuchGPU\n")
	f.Add("l1.sets = 3\n")      // not a power of two
	f.Add("l2.ways = 999999\n") // absurd but parseable
	f.Add("sm.scheduler = bogus\n")
	f.Add("unknown.key = 1\n")

	f.Fuzz(func(t *testing.T, data string) {
		g, err := Parse(strings.NewReader(data))
		if err != nil {
			return // rejected input: must only be reported, never panic
		}
		m := Marshal(g)
		g2, err := Parse(bytes.NewReader(m))
		if err != nil {
			t.Fatalf("reparsing marshaled config: %v\nmarshaled:\n%s", err, m)
		}
		if m2 := Marshal(g2); !bytes.Equal(m, m2) {
			t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", m, m2)
		}
	})
}
