package config

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		g, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) not found", name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, ok := Preset("GTX1080"); ok {
		t.Fatal("Preset accepted unknown name")
	}
}

func TestTable1Values(t *testing.T) {
	// Table I of the paper.
	cases := []struct {
		g         GPU
		sms       int
		cudaCores int
		l2MiB     float64
	}{
		{RTX2080Ti(), 68, 4352, 5.5},
		{RTX3060(), 28, 3584, 3.0},
		{RTX3090(), 82, 10496, 6.0},
	}
	for _, c := range cases {
		if c.g.NumSMs != c.sms {
			t.Errorf("%s: NumSMs = %d, want %d", c.g.Name, c.g.NumSMs, c.sms)
		}
		if got := c.g.CUDACores(); got != c.cudaCores {
			t.Errorf("%s: CUDACores = %d, want %d", c.g.Name, got, c.cudaCores)
		}
		if got := float64(c.g.L2TotalBytes()) / (1 << 20); got != c.l2MiB {
			t.Errorf("%s: L2 total = %.2f MiB, want %.2f", c.g.Name, got, c.l2MiB)
		}
	}
}

func TestTable2Values(t *testing.T) {
	// Table II of the paper for the RTX 2080 Ti.
	g := RTX2080Ti()
	if g.SM.SubCores != 4 {
		t.Errorf("SubCores = %d, want 4", g.SM.SubCores)
	}
	if g.SM.Scheduler != GTO {
		t.Errorf("Scheduler = %v, want GTO", g.SM.Scheduler)
	}
	if g.SM.IntLanes != 16 || g.SM.SPLanes != 16 || g.SM.SFULanes != 4 || g.SM.LDSTLanes != 4 {
		t.Errorf("lanes = INT:%d SP:%d SFU:%d LDST:%d, want 16/16/4/4",
			g.SM.IntLanes, g.SM.SPLanes, g.SM.SFULanes, g.SM.LDSTLanes)
	}
	if !g.SM.DPLanesHalf {
		t.Error("DPLanesHalf = false, want true (DP:0.5x)")
	}
	if g.L1.LineBytes != 128 || g.L1.SectorBytes != 32 || g.L1.Banks != 4 {
		t.Errorf("L1 line/sector/banks = %d/%d/%d, want 128/32/4",
			g.L1.LineBytes, g.L1.SectorBytes, g.L1.Banks)
	}
	if g.L1.MSHREntries != 256 || g.L1.MSHRMaxMerge != 8 || g.L1.HitLatency != 32 {
		t.Errorf("L1 MSHR/merge/latency = %d/%d/%d, want 256/8/32",
			g.L1.MSHREntries, g.L1.MSHRMaxMerge, g.L1.HitLatency)
	}
	if g.L1.WriteBack || !g.L1.Streaming {
		t.Error("L1 must be write-through and streaming")
	}
	if g.L2.MSHREntries != 192 || g.L2.MSHRMaxMerge != 4 || g.L2.HitLatency != 188 {
		t.Errorf("L2 MSHR/merge/latency = %d/%d/%d, want 192/4/188",
			g.L2.MSHREntries, g.L2.MSHRMaxMerge, g.L2.HitLatency)
	}
	if !g.L2.WriteBack {
		t.Error("L2 must be write-back")
	}
	if g.MemPartitions != 22 || g.DRAMLatency != 227 {
		t.Errorf("partitions/DRAM = %d/%d, want 22/227", g.MemPartitions, g.DRAMLatency)
	}
}

func TestIssueInterval(t *testing.T) {
	sm := SM{WarpSize: 32}
	cases := []struct{ lanes, want int }{
		{32, 1}, {16, 2}, {8, 4}, {4, 8}, {1, 32}, {0, 64}, {5, 7},
	}
	for _, c := range cases {
		if got := sm.IssueInterval(c.lanes); got != c.want {
			t.Errorf("IssueInterval(%d) = %d, want %d", c.lanes, got, c.want)
		}
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		want, _ := Preset(name)
		got, err := Parse(strings.NewReader(string(Marshal(want))))
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestParseBasePreset(t *testing.T) {
	text := "gpu.base = RTX2080Ti\ngpu.num_sms = 40\nl1.replacement = FIFO\n"
	g, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSMs != 40 {
		t.Errorf("NumSMs = %d, want 40", g.NumSMs)
	}
	if g.L1.Replacement != FIFO {
		t.Errorf("L1.Replacement = %v, want FIFO", g.L1.Replacement)
	}
	// Untouched fields come from the preset.
	if g.MemPartitions != 22 {
		t.Errorf("MemPartitions = %d, want 22", g.MemPartitions)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"garbage line", "gpu.base = RTX2080Ti\nnot a config line\n", "expected key = value"},
		{"unknown key", "gpu.base = RTX2080Ti\ngpu.bogus = 3\n", "unknown configuration key"},
		{"bad int", "gpu.base = RTX2080Ti\ngpu.num_sms = many\n", "not an integer"},
		{"bad bool", "gpu.base = RTX2080Ti\nl1.streaming = si\n", "not a boolean"},
		{"bad policy", "gpu.base = RTX2080Ti\nsm.scheduler = FAIR\n", "unknown scheduler policy"},
		{"bad replacement", "gpu.base = RTX2080Ti\nl2.replacement = PLRU\n", "unknown replacement policy"},
		{"unknown base", "gpu.base = GTX285\n", "unknown preset"},
		{"duplicate key", "gpu.base = RTX2080Ti\ngpu.num_sms = 4\ngpu.num_sms = 5\n", "duplicate key"},
		{"invalid after apply", "gpu.base = RTX2080Ti\ngpu.num_sms = 0\n", "must be positive"},
		{"empty value", "gpu.name =\n", "empty key or value"},
		{"no base incomplete", "gpu.name = X\n", ""},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.text))
		if err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
			continue
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	text := `
# full line comment
gpu.base = RTX2080Ti # trailing comment

gpu.num_sms = 10
`
	g, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSMs != 10 {
		t.Errorf("NumSMs = %d, want 10", g.NumSMs)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*GPU)
	}{
		{"no name", func(g *GPU) { g.Name = "" }},
		{"zero SMs", func(g *GPU) { g.NumSMs = 0 }},
		{"zero partitions", func(g *GPU) { g.MemPartitions = 0 }},
		{"negative noc", func(g *GPU) { g.NoCLatency = -1 }},
		{"zero dram latency", func(g *GPU) { g.DRAMLatency = 0 }},
		{"zero dram banks", func(g *GPU) { g.DRAMBanksPerPartition = 0 }},
		{"zero warp size", func(g *GPU) { g.SM.WarpSize = 0 }},
		{"warps not divisible", func(g *GPU) { g.SM.MaxWarps = 33 }},
		{"zero blocks", func(g *GPU) { g.SM.MaxBlocks = 0 }},
		{"zero regs", func(g *GPU) { g.SM.Registers = 0 }},
		{"neg shared", func(g *GPU) { g.SM.SharedMemBytes = -1 }},
		{"zero lanes", func(g *GPU) { g.SM.SPLanes = 0 }},
		{"neg dp lanes", func(g *GPU) { g.SM.DPLanes = -1 }},
		{"zero latency", func(g *GPU) { g.SM.SPLatency = 0 }},
		{"zero shmem latency", func(g *GPU) { g.SM.SharedMemLatency = 0 }},
		{"l1 sets not pow2", func(g *GPU) { g.L1.Sets = 3 }},
		{"l1 zero ways", func(g *GPU) { g.L1.Ways = 0 }},
		{"l1 sector > line", func(g *GPU) { g.L1.SectorBytes = 256 }},
		{"l1 banks not pow2", func(g *GPU) { g.L1.Banks = 3 }},
		{"l1 zero mshr", func(g *GPU) { g.L1.MSHREntries = 0 }},
		{"l1 zero merge", func(g *GPU) { g.L1.MSHRMaxMerge = 0 }},
		{"l1 zero latency", func(g *GPU) { g.L1.HitLatency = 0 }},
		{"l1 zero throughput", func(g *GPU) { g.L1.Throughput = 0 }},
		{"l1 write-back", func(g *GPU) { g.L1.WriteBack = true }},
		{"l2 sets not pow2", func(g *GPU) { g.L2.Sets = 7 }},
	}
	for _, m := range mutations {
		g := RTX2080Ti()
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
		}
	}
}

func TestWriteLoadFile(t *testing.T) {
	path := t.TempDir() + "/gpu.cfg"
	want := RTX3090()
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("file round trip mismatch")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(t.TempDir() + "/nonexistent.cfg"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []SchedPolicy{GTO, LRR, OldestFirst} {
		got, err := ParseSchedPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSchedPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, r := range []Replacement{LRU, FIFO, Random} {
		got, err := ParseReplacement(r.String())
		if err != nil || got != r {
			t.Errorf("ParseReplacement(%q) = %v, %v", r.String(), got, err)
		}
	}
	if SchedPolicy(99).String() == "" || Replacement(99).String() == "" {
		t.Error("String() of unknown enum must be non-empty")
	}
}
