// Package snap implements Swift-Sim's versioned binary snapshot format:
// a little-endian, length-prefixed encoding used to serialize engine and
// module state at a quiescent cycle so runs can be checkpointed, resumed,
// and fanned out across configurations.
//
// The package is dependency-free by design — every simulated-hardware
// package (engine, smcore, cache, noc, dram, analytic) implements
// Stateful against it without import cycles. Decoding is hardened for
// untrusted input: the Reader carries a sticky error, every allocation is
// capped by the bytes actually remaining, and all failures are structured
// errors (never panics) so a corrupt checkpoint file degrades into a
// clean "cannot restore" result.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies a Swift-Sim snapshot stream.
const Magic = "SSIM"

// Version is the current snapshot format version. Bump on any
// incompatible layout change; LoadHeader rejects mismatches with
// ErrVersion so a skewed binary never misparses old state as new.
const Version uint32 = 1

// ErrCorrupt reports structurally invalid snapshot data.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// ErrTruncated reports snapshot data that ends mid-field.
var ErrTruncated = errors.New("snap: truncated snapshot")

// ErrVersion reports a snapshot written by an incompatible format version.
var ErrVersion = errors.New("snap: unsupported snapshot version")

// ErrNotQuiescent reports an attempt to snapshot a module that still holds
// in-flight work (queued requests, occupied pipeline stages). Snapshots are
// only defined at quiescent points; callers should retry at the next kernel
// boundary.
var ErrNotQuiescent = errors.New("snap: module not quiescent")

// Stateful is a module whose simulation state can be serialized into a
// snapshot and restored from one. Implementations write and read the
// exact same field sequence; the engine frames each module's payload with
// its name and length, so a mismatch is detected, not silently misread.
type Stateful interface {
	// SnapSave appends the module's state to w. It must only be called at
	// a quiescent point (no in-flight requests or scheduled events); the
	// implementation may return an error through w via Fail when its
	// invariants do not hold.
	SnapSave(w *Writer)
	// SnapLoad restores the module's state from r. The module was just
	// assembled, so every field not read keeps its initial value.
	SnapLoad(r *Reader) error
}

// Writer builds a snapshot payload in memory. The zero value is ready to
// use. Writers never fail on I/O (they buffer); Fail records a semantic
// error (a module asked to snapshot non-quiescent state), surfaced by
// Err.
type Writer struct {
	buf []byte
	err error
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Err returns the first semantic error recorded with Fail, if any.
func (w *Writer) Err() error { return w.err }

// Fail records a semantic error; the first one sticks.
func (w *Writer) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// U64 appends a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// U32 appends a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends a float64 by its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes64 appends a length-prefixed byte slice.
func (w *Writer) Bytes64(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// WriteTo writes the magic, the format version and the payload to out.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	var hdr [8]byte
	copy(hdr[:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	n, err := out.Write(hdr[:])
	if err != nil {
		return int64(n), err
	}
	m, err := out.Write(w.buf)
	return int64(n + m), err
}

// Reader decodes a snapshot payload with a sticky error: after the first
// failure every accessor returns the zero value, so decode sequences stay
// linear and check Err (or the per-call error helpers) at section
// boundaries.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader returns a Reader over raw payload bytes (no header).
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// LoadHeader validates the magic and version of a full snapshot stream
// and returns a Reader positioned at the payload.
func LoadHeader(b []byte) (*Reader, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("%w: %d-byte stream is shorter than the header", ErrTruncated, len(b))
	}
	if string(b[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	v := binary.LittleEndian.Uint32(b[4:8])
	if v != Version {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrVersion, v, Version)
	}
	return NewReader(b[8:]), nil
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// fail records the sticky error (first one wins).
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf records a formatted semantic decode error (first one wins). Module
// SnapLoad implementations use it for invariant violations (for example a
// count that exceeds the assembled geometry).
func (r *Reader) Failf(format string, args ...any) {
	r.fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(fmt.Errorf("%w: u64 at offset %d", ErrTruncated, r.pos))
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail(fmt.Errorf("%w: u32 at offset %d", ErrTruncated, r.pos))
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// Bool reads a one-byte bool; any value other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Remaining() < 1 {
		r.fail(fmt.Errorf("%w: bool at offset %d", ErrTruncated, r.pos))
		return false
	}
	b := r.buf[r.pos]
	r.pos++
	if b > 1 {
		r.fail(fmt.Errorf("%w: bool byte 0x%02x at offset %d", ErrCorrupt, b, r.pos-1))
		return false
	}
	return b == 1
}

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length prefix and validates it against the remaining bytes
// (assuming at least one byte per element), so a corrupt length can never
// trigger a huge allocation.
func (r *Reader) Len() int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.fail(fmt.Errorf("%w: length %d exceeds %d remaining bytes", ErrCorrupt, n, r.Remaining()))
		return 0
	}
	return int(n)
}

// Count reads an element count for fixed-size elements of elemBytes bytes
// each, validating count*elemBytes against the remaining payload.
func (r *Reader) Count(elemBytes int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemBytes < 1 {
		elemBytes = 1
	}
	if n > uint64(r.Remaining())/uint64(elemBytes) {
		r.fail(fmt.Errorf("%w: count %d × %dB exceeds %d remaining bytes", ErrCorrupt, n, elemBytes, r.Remaining()))
		return 0
	}
	return int(n)
}

// BytesN reads a length-prefixed byte slice (copied out of the buffer).
func (r *Reader) BytesN() []byte {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.buf[r.pos:r.pos+n])
	r.pos += n
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}
