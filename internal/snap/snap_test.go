package snap

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestWriterReaderRoundTrip pins every primitive through a full encode,
// WriteTo, LoadHeader, decode cycle.
func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0)
	w.U64(math.MaxUint64)
	w.U32(7)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.5)
	w.F64(math.Inf(-1))
	w.String("hello")
	w.String("")
	w.Bytes64([]byte{1, 2, 3})
	w.Bytes64(nil)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := LoadHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.U64(); got != 0 {
		t.Errorf("U64 = %d, want 0", got)
	}
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d, want MaxUint64", got)
	}
	if got := r.U32(); got != 7 {
		t.Errorf("U32 = %d, want 7", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := r.F64(); got != 3.5 {
		t.Errorf("F64 = %v, want 3.5", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q, want hello", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if got := r.BytesN(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesN = %v", got)
	}
	if got := r.BytesN(); len(got) != 0 {
		t.Errorf("BytesN = %v, want empty", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d trailing bytes", r.Remaining())
	}
}

// TestReaderTruncation pins the sticky ErrTruncated contract: reads past the
// end fail once and every subsequent read keeps failing with zero values.
func TestReaderTruncation(t *testing.T) {
	var w Writer
	w.U64(42)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := LoadHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r.U64()
	if got := r.U64(); got != 0 {
		t.Errorf("read past end = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("Err() = %v, want ErrTruncated", r.Err())
	}
	// Sticky: later reads keep the first error.
	r.U32()
	_ = r.String()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Errorf("Err() after more reads = %v, want ErrTruncated", r.Err())
	}
}

// TestLoadHeaderRejects pins the header validation: short input, a wrong
// magic and a future version all fail with the right sentinel.
func TestLoadHeaderRejects(t *testing.T) {
	if _, err := LoadHeader(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: %v, want ErrTruncated", err)
	}
	if _, err := LoadHeader([]byte("SS")); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v, want ErrTruncated", err)
	}
	if _, err := LoadHeader([]byte("XXXX\x01\x00\x00\x00")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: %v, want ErrCorrupt", err)
	}
	if _, err := LoadHeader([]byte("SSIM\xff\x00\x00\x00")); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: %v, want ErrVersion", err)
	}
}

// TestCountCapsAllocation pins the attacker-controlled-length guard: a count
// field far beyond the remaining payload fails instead of allocating.
func TestCountCapsAllocation(t *testing.T) {
	var w Writer
	w.U64(math.MaxUint64)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := LoadHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Count(16); n != 0 {
		t.Errorf("Count = %d, want 0", n)
	}
	if r.Err() == nil {
		t.Error("absurd count accepted")
	}
}

// TestFailSticky pins Writer.Fail: once failed, the payload is poisoned and
// WriteTo refuses to emit it.
func TestFailSticky(t *testing.T) {
	var w Writer
	w.U64(1)
	wantErr := errors.New("boom")
	w.Fail(wantErr)
	w.U64(2)
	if !errors.Is(w.Err(), wantErr) {
		t.Errorf("Err() = %v, want boom", w.Err())
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); !errors.Is(err, wantErr) {
		t.Errorf("WriteTo = %v, want boom", err)
	}
	if buf.Len() != 0 {
		t.Errorf("WriteTo emitted %d bytes after Fail", buf.Len())
	}
}
