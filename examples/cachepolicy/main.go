// Cache replacement-policy design-space exploration.
//
// The paper motivates hybrid simulation by noting that purely analytical
// cache models (reuse-distance theory) are locked to LRU, "which makes it
// difficult to simulate other replacement policies such as FIFO or
// Random". Swift-Sim's cycle-accurate cache module supports all three, and
// Swift-Sim-Basic keeps the memory hierarchy cycle-accurate — so
// replacement policies stay explorable while the ALUs are analytical.
//
// Part 1 sweeps policies and capacities with a hand-built cache-thrash
// kernel (each warp cyclically re-scans a buffer slightly larger than its
// L1 share — the pattern where LRU pathologically misses and Random keeps
// part of the working set). Part 2 sweeps bundled applications.
//
// Run with: go run ./examples/cachepolicy
package main

import (
	"fmt"
	"log"

	"swiftsim"
	"swiftsim/internal/config"
	"swiftsim/internal/trace"
)

// thrashApp builds a kernel whose single resident warp per SM cyclically
// scans bufBytes of memory three times with perfectly coalesced loads.
func thrashApp(bufBytes int) *swiftsim.App {
	const passes = 3
	lines := bufBytes / 128
	var wt trace.WarpTrace
	pc := uint64(0)
	for p := 0; p < passes; p++ {
		pc = 0 // all passes share static PCs, like a real loop
		for l := 0; l < lines; l++ {
			addrs := make([]uint64, 32)
			for lane := range addrs {
				addrs[lane] = uint64(0x1000_0000 + l*128 + lane*4)
			}
			wt = append(wt, trace.Inst{
				PC: pc, Op: trace.OpLoadGlobal, Dst: trace.Reg(l%30 + 1),
				ActiveMask: 0xffffffff, Addrs: addrs,
			})
			pc += 8
		}
	}
	wt = append(wt, trace.Inst{PC: pc, Op: trace.OpExit, ActiveMask: 0xffffffff})
	k := &trace.Kernel{
		Name:          "thrash",
		Grid:          trace.Dim3{X: 1, Y: 1, Z: 1},
		Block:         trace.Dim3{X: 32, Y: 1, Z: 1},
		RegsPerThread: 32,
		Blocks:        []trace.BlockTrace{{Warps: []trace.WarpTrace{wt}}},
	}
	return &swiftsim.App{Name: "THRASH", Suite: "custom", Kernels: []*trace.Kernel{k}}
}

func simulate(app *swiftsim.App, gpu swiftsim.GPU) *swiftsim.Result {
	res, err := swiftsim.Simulate(app, gpu, swiftsim.Config{Simulator: swiftsim.SwiftSimBasic})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	policies := []config.Replacement{config.LRU, config.FIFO, config.Random}

	fmt.Println("replacement-policy sweep on a 96 KiB cyclic re-scan (64 KiB L1):")
	fmt.Printf("%-8s %10s %14s\n", "policy", "cycles", "L1 miss rate")
	app := thrashApp(96 << 10)
	for _, pol := range policies {
		gpu := swiftsim.RTX2080Ti()
		gpu.L1.Replacement = pol
		res := simulate(app, gpu)
		mr := float64(res.Metrics["l1.miss"]) / float64(res.Metrics["l1.miss"]+res.Metrics["l1.hit"])
		fmt.Printf("%-8s %10d %13.1f%%\n", pol, res.Cycles, 100*mr)
	}

	fmt.Println("\nL1 capacity sweep (LRU, 96 KiB working set):")
	for _, sets := range []int{32, 64, 128, 256} {
		gpu := swiftsim.RTX2080Ti()
		gpu.L1.Sets = sets
		res := simulate(app, gpu)
		mr := float64(res.Metrics["l1.miss"]) / float64(res.Metrics["l1.miss"]+res.Metrics["l1.hit"])
		fmt.Printf("  %4d KiB L1: %8d cycles, miss rate %5.1f%%\n",
			gpu.L1.SizeBytes()/1024, res.Cycles, 100*mr)
	}

	fmt.Println("\nbundled applications (policy sensitivity varies with reuse):")
	fmt.Printf("%-12s", "App")
	for _, p := range policies {
		fmt.Printf(" %10s", p)
	}
	fmt.Println()
	for _, name := range []string{"SRAD", "ATAX", "GAUSSIAN"} {
		bApp, err := swiftsim.GenerateWorkload(name, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", name)
		for _, pol := range policies {
			gpu := swiftsim.RTX2080Ti()
			gpu.L1.Replacement = pol
			fmt.Printf(" %10d", simulate(bApp, gpu).Cycles)
		}
		fmt.Println()
	}
}
