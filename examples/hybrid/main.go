// Hybrid-modeling tour: what swapping modules between cycle-accurate and
// analytical modeling does to accuracy and speed, plus the parallel
// simulation mode of §IV-B2.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"swiftsim"
)

func main() {
	gpu := swiftsim.RTX2080Ti()
	apps := []string{"SM", "GRU", "GEMM", "BFS"}

	// 1. Accuracy/speed per configuration, against the golden reference.
	fmt.Println("configuration comparison (golden reference = substituted hardware):")
	fmt.Printf("%-8s %10s | %22s | %22s | %22s\n", "App", "hardware",
		"Detailed", "Swift-Sim-Basic", "Swift-Sim-Memory")
	for _, name := range apps {
		app, err := swiftsim.GenerateWorkload(name, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		hw, err := swiftsim.SimulateHardware(app, gpu)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10d |", name, hw.Cycles)
		for _, s := range []swiftsim.Simulator{swiftsim.Detailed, swiftsim.SwiftSimBasic, swiftsim.SwiftSimMemory} {
			res, err := swiftsim.Simulate(app, gpu, swiftsim.Config{Simulator: s})
			if err != nil {
				log.Fatal(err)
			}
			errPct := 100 * abs(float64(res.Cycles)-float64(hw.Cycles)) / float64(hw.Cycles)
			fmt.Printf(" %9d (%5.1f%%) |", res.Cycles, errPct)
		}
		fmt.Println()
	}

	// 2. The hybrid inventory: which modules are analytical.
	app, _ := swiftsim.GenerateWorkload("BFS", 0.2)
	res, err := swiftsim.Simulate(app, gpu, swiftsim.Config{Simulator: swiftsim.SwiftSimMemory})
	if err != nil {
		log.Fatal(err)
	}
	ca, an := 0, 0
	for _, m := range res.Inventory {
		if m.Kind.String() == "analytical" {
			an++
		} else {
			ca++
		}
	}
	fmt.Printf("\nSwift-Sim-Memory module inventory: %d cycle-accurate, %d analytical\n", ca, an)

	// 3. Hit-rate sources for Eq. 1.
	fmt.Println("\nEq. 1 hit-rate source comparison on GEMM:")
	gemm, _ := swiftsim.GenerateWorkload("GEMM", 0.5)
	for _, src := range []struct {
		name string
		s    swiftsim.HitRateSource
	}{{"functional caches", swiftsim.FunctionalCaches}, {"reuse distance", swiftsim.ReuseDistance}} {
		res, err := swiftsim.Simulate(gemm, gpu, swiftsim.Config{
			Simulator: swiftsim.SwiftSimMemory, HitRates: src.s,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8d cycles\n", src.name, res.Cycles)
	}

	// 4. Parallel simulation across applications (§IV-B2).
	// Longer-running Basic jobs amortize scheduling overhead, so the
	// worker pool's scaling is visible even on small hosts.
	jobs := make([]swiftsim.Job, 0, len(apps))
	for _, name := range apps {
		a, _ := swiftsim.GenerateWorkload(name, 0.5)
		jobs = append(jobs, swiftsim.Job{App: a, GPU: gpu,
			Cfg: swiftsim.Config{Simulator: swiftsim.SwiftSimBasic}})
	}
	t1 := time.Now()
	swiftsim.SimulateAll(jobs, 1)
	seq := time.Since(t1)
	tN := time.Now()
	swiftsim.SimulateAll(jobs, runtime.NumCPU())
	par := time.Since(tN)
	fmt.Printf("\nparallel simulation: %d apps sequential %s, %d workers %s (%.1fx)\n",
		len(jobs), seq.Round(time.Millisecond), runtime.NumCPU(),
		par.Round(time.Millisecond), seq.Seconds()/par.Seconds())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
