// Warp-scheduler exploration — the paper's motivating scenario (§III-D):
// "Assuming we need to explore a new warp scheduling algorithm, Warp
// Scheduler & Dispatch needs cycle-accurate simulation ... For other
// modules, architects can choose appropriate modeling methods as needed."
//
// The Warp Scheduler & Dispatch module is cycle-accurate in every
// Swift-Sim configuration, so scheduling policies can be compared with
// Swift-Sim-Memory at a fraction of the detailed simulator's cost. This
// example:
//
//  1. sweeps the three built-in policies (GTO, LRR, oldest-first);
//  2. plugs in two *custom* policies through the WarpPicker extension
//     point — the library-provided mem-first policy and a bespoke
//     "criticality-first" policy defined right here;
//  3. cross-checks a ranking against the detailed simulator.
//
// Run with: go run ./examples/warpsched
package main

import (
	"fmt"
	"log"

	"swiftsim"
	"swiftsim/internal/config"
)

// critFirst is a user-defined scheduling policy: prioritize the warp with
// the most remaining instructions (the "critical" warp), so long-running
// warps are not starved at kernel tails.
type critFirst struct{}

func (critFirst) Pick(cycle uint64, warps []*swiftsim.Warp, tried func(*swiftsim.Warp) bool) int {
	best, bestRemain := -1, -1
	for i, w := range warps {
		if !swiftsim.PickerIssuable(w) || tried(w) {
			continue
		}
		if r := swiftsim.PickerRemainingInsts(w); r > bestRemain {
			best, bestRemain = i, r
		}
	}
	return best
}

func (critFirst) Issued(int, *swiftsim.Warp) {}

func simulate(app *swiftsim.App, gpu swiftsim.GPU, cfg swiftsim.Config) uint64 {
	res, err := swiftsim.Simulate(app, gpu, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.Cycles
}

func main() {
	apps := []string{"BFS", "GEMM", "SM", "SRAD", "LSTM"}

	type policy struct {
		name string
		cfg  func() swiftsim.Config
	}
	policies := []policy{
		{"GTO", nil}, {"LRR", nil}, {"OLDEST", nil},
		{"mem-first", func() swiftsim.Config {
			return swiftsim.Config{
				Simulator: swiftsim.SwiftSimMemory,
				Scheduler: func(_, _ int) swiftsim.WarpPicker { return swiftsim.NewMemFirstPicker() },
			}
		}},
		{"crit-first", func() swiftsim.Config {
			return swiftsim.Config{
				Simulator: swiftsim.SwiftSimMemory,
				Scheduler: func(_, _ int) swiftsim.WarpPicker { return critFirst{} },
			}
		}},
	}
	builtinPolicies := map[string]config.SchedPolicy{
		"GTO": config.GTO, "LRR": config.LRR, "OLDEST": config.OldestFirst,
	}

	fmt.Println("warp-scheduling exploration with Swift-Sim-Memory")
	fmt.Printf("%-10s", "App")
	for _, p := range policies {
		fmt.Printf(" %11s", p.name)
	}
	fmt.Println()

	for _, name := range apps {
		app, err := swiftsim.GenerateWorkload(name, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", name)
		for _, p := range policies {
			gpu := swiftsim.RTX2080Ti()
			var cfg swiftsim.Config
			if bp, ok := builtinPolicies[p.name]; ok {
				gpu.SM.Scheduler = bp
				cfg = swiftsim.Config{Simulator: swiftsim.SwiftSimMemory}
			} else {
				cfg = p.cfg()
			}
			fmt.Printf(" %11d", simulate(app, gpu, cfg))
		}
		fmt.Println()
	}

	// Cross-check the custom policies against the detailed simulator on
	// one application: the hybrid simulator must preserve the ranking.
	fmt.Println("\ncross-check on SM with the detailed simulator:")
	app, _ := swiftsim.GenerateWorkload("SM", 0.5)
	for _, p := range policies {
		gpu := swiftsim.RTX2080Ti()
		var cfg swiftsim.Config
		if bp, ok := builtinPolicies[p.name]; ok {
			gpu.SM.Scheduler = bp
			cfg = swiftsim.Config{Simulator: swiftsim.Detailed}
		} else {
			cfg = p.cfg()
			cfg.Simulator = swiftsim.Detailed
		}
		fmt.Printf("  %-11s %10d cycles (detailed)\n", p.name, simulate(app, gpu, cfg))
	}
}
