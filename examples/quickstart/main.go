// Quickstart: generate a workload, simulate it with the three Swift-Sim
// configurations, and print the headline numbers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"swiftsim"
)

func main() {
	// A mid-size stencil workload from the Rodinia suite.
	app, err := swiftsim.GenerateWorkload("HOTSPOT", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	gpu := swiftsim.RTX2080Ti()
	fmt.Printf("simulating %s (%d instructions) on %s\n\n", app.Name, app.Insts(), gpu.Name)

	for _, simulator := range []swiftsim.Simulator{
		swiftsim.Detailed, swiftsim.SwiftSimBasic, swiftsim.SwiftSimMemory,
	} {
		res, err := swiftsim.Simulate(app, gpu, swiftsim.Config{Simulator: simulator})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8d cycles   wall %10s   (ticked %d, fast-forwarded %d)\n",
			res.Kind, res.Cycles, res.Wall.Round(1000), res.TickedCycles, res.SkippedCycles)
	}

	// The golden reference stands in for real-hardware measurements.
	hw, err := swiftsim.SimulateHardware(app, gpu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8d cycles   (golden reference model)\n", "hardware", hw.Cycles)
}
