// Package swiftsim is the public API of the Swift-Sim reproduction: a
// modular and hybrid GPU architecture simulation framework (Xu et al.,
// DATE 2025).
//
// Swift-Sim simulates trace-driven GPU workloads with a modular
// performance model in which every component — block scheduler, warp
// scheduler & dispatch, execution units, LD/ST unit, caches, NoC, DRAM —
// sits behind a fixed interface and can be modeled either cycle-accurately
// or analytically. Three ready-made configurations mirror the paper:
//
//	Detailed          fully cycle-accurate baseline (Accel-Sim class)
//	SwiftSimBasic     analytical ALU pipelines (§III-D1)
//	SwiftSimMemory    analytical ALUs + analytical memory model (§III-D2)
//
// A minimal session:
//
//	app, _ := swiftsim.GenerateWorkload("BFS", 1.0)
//	res, _ := swiftsim.Simulate(app, swiftsim.RTX2080Ti(), swiftsim.Config{
//		Simulator: swiftsim.SwiftSimMemory,
//	})
//	fmt.Println(res.Cycles)
package swiftsim

import (
	"context"
	"io"

	"swiftsim/internal/config"
	"swiftsim/internal/hwmodel"
	"swiftsim/internal/metrics"
	"swiftsim/internal/obs"
	"swiftsim/internal/runner"
	"swiftsim/internal/sim"
	"swiftsim/internal/smcore"
	"swiftsim/internal/trace"
	"swiftsim/internal/workload"
)

// Simulator selects one of the framework's assembled configurations.
type Simulator = sim.Kind

// The three configurations evaluated in the paper.
const (
	// Detailed is the fully cycle-accurate baseline simulator.
	Detailed Simulator = sim.Detailed
	// SwiftSimBasic replaces the ALU pipelines with the analytical model
	// of §III-D1; the memory hierarchy stays cycle-accurate.
	SwiftSimBasic Simulator = sim.Basic
	// SwiftSimMemory additionally replaces the LD/ST unit and the whole
	// memory hierarchy with the Eq. 1 analytical model of §III-D2.
	SwiftSimMemory Simulator = sim.Memory
	// SwiftSimL2 keeps the LD/ST units and L1 cycle-accurate but swaps
	// the NoC, L2 and DRAM for an analytical backend — a further
	// hybridization point at the memory-port boundary.
	SwiftSimL2 Simulator = sim.L2Hybrid
)

// HitRateSource selects where SwiftSimMemory's Eq. 1 hit rates come from.
type HitRateSource = sim.HitRateSource

const (
	// FunctionalCaches extracts hit rates with timeless sectored caches
	// (works with every replacement policy).
	FunctionalCaches HitRateSource = sim.FunctionalCaches
	// ReuseDistance extracts hit rates with LRU stack-distance theory.
	ReuseDistance HitRateSource = sim.ReuseDistance
)

// GPU is a hardware configuration (see the config file format in
// internal/config and the presets below).
type GPU = config.GPU

// RTX2080Ti returns the NVIDIA RTX 2080 Ti configuration of Table II.
func RTX2080Ti() GPU { return config.RTX2080Ti() }

// RTX3060 returns the NVIDIA RTX 3060 configuration of Table I.
func RTX3060() GPU { return config.RTX3060() }

// RTX3090 returns the NVIDIA RTX 3090 configuration of Table I.
func RTX3090() GPU { return config.RTX3090() }

// GPUPreset looks up a preset configuration by name ("RTX2080Ti",
// "RTX3060", "RTX3090").
func GPUPreset(name string) (GPU, bool) { return config.Preset(name) }

// LoadGPU reads a hardware configuration file (key = value format; see
// WriteGPU for the exact keys). Files may set "gpu.base = <preset>" and
// override individual parameters.
func LoadGPU(path string) (GPU, error) { return config.LoadFile(path) }

// WriteGPU writes a configuration file for g.
func WriteGPU(path string, g GPU) error { return config.WriteFile(path, g) }

// App is a traced GPU application: an ordered list of kernel launches with
// per-warp instruction streams.
type App = trace.App

// Kernel is one kernel launch within an App.
type Kernel = trace.Kernel

// GenerateWorkload synthesizes one of the 20 bundled benchmark
// applications (Rodinia, Polybench, Mars, Tango, Pannotia) at the given
// problem scale (1.0 = default size). See Workloads for the catalog.
func GenerateWorkload(name string, scale float64) (*App, error) {
	return workload.Generate(name, scale)
}

// Workloads lists the bundled application names grouped by suite order.
func Workloads() []string { return workload.Names() }

// WorkloadInfo describes one bundled application.
type WorkloadInfo struct {
	Name        string
	Suite       string
	Description string
	MemoryBound bool
}

// WorkloadCatalog returns the full application catalog.
func WorkloadCatalog() []WorkloadInfo {
	specs := workload.Catalog()
	out := make([]WorkloadInfo, len(specs))
	for i, s := range specs {
		out[i] = WorkloadInfo{Name: s.Name, Suite: s.Suite, Description: s.Description, MemoryBound: s.MemoryBound}
	}
	return out
}

// ReadTrace parses a .sgt trace file produced by WriteTrace or the
// tracegen tool.
func ReadTrace(path string) (*App, error) { return trace.ReadFile(path) }

// WriteTrace serializes an application to a .sgt trace file.
func WriteTrace(path string, app *App) error { return trace.WriteFile(path, app) }

// WarpPicker is a custom warp-scheduling policy: the extension point of
// the paper's motivating scenario (exploring new warp schedulers while
// everything else is modeled analytically). Implementations see the
// resident warps of one sub-core each cycle and return the slot index to
// issue from; see NewMemFirstPicker for a worked example.
type WarpPicker = smcore.Picker

// Warp is the per-warp execution context a WarpPicker inspects.
type Warp = smcore.Warp

// Candidate-inspection helpers for WarpPicker implementations.
var (
	// PickerIssuable reports whether a warp can issue this cycle.
	PickerIssuable = smcore.Issuable
	// PickerNextOp returns a warp's next opcode class.
	PickerNextOp = smcore.NextOp
	// PickerRemainingInsts returns how many instructions a warp still
	// has to issue.
	PickerRemainingInsts = smcore.RemainingInsts
)

// NewMemFirstPicker returns a policy that prioritizes warps about to issue
// global-memory instructions (maximizing memory-level parallelism).
func NewMemFirstPicker() WarpPicker { return smcore.NewMemFirstPicker() }

// NewYoungestFirstPicker returns the youngest-first strawman policy.
func NewYoungestFirstPicker() WarpPicker { return smcore.NewYoungestFirstPicker() }

// Observability: simulations can record structured trace events — kernel
// and block spans, memory request lifecycles, engine fast-forward windows,
// a periodic counter timeline — into a TraceRecorder, exported as Chrome
// trace-event JSON (chrome://tracing / Perfetto), a counter-timeline CSV,
// or a top-N stall summary. With a nil Tracer (the default) every hook is
// a single nil check: results, metrics and performance are unchanged.

// Tracer is the handle simulations emit trace events through; construct
// one with NewTracer and pass it in Config.Trace or RunOptions.Trace. A
// nil *Tracer records nothing.
type Tracer = obs.Tracer

// TraceLevel selects how much detail a Tracer records.
type TraceLevel = obs.Level

// Trace levels, in increasing detail and volume.
const (
	// TraceOff records nothing.
	TraceOff TraceLevel = obs.Off
	// TraceKernel records per-kernel and per-job spans.
	TraceKernel TraceLevel = obs.KernelLevel
	// TraceModule adds block spans, stall attribution, engine
	// fast-forward windows, and the periodic counter timeline.
	TraceModule TraceLevel = obs.ModuleLevel
	// TraceRequest adds every memory request's lifecycle through the L1,
	// NoC, L2 and DRAM.
	TraceRequest TraceLevel = obs.RequestLevel
)

// ParseTraceLevel parses "off", "kernel", "module" or "request".
func ParseTraceLevel(s string) (TraceLevel, error) { return obs.ParseLevel(s) }

// TraceRecorder is the sink trace events are recorded into; it must be
// safe for concurrent use (parallel sweeps share one recorder).
type TraceRecorder = obs.Recorder

// TraceEvent is one recorded trace event.
type TraceEvent = obs.Event

// TraceRing is a bounded in-memory recorder keeping the most recent
// events; read them back with Events().
type TraceRing = obs.Ring

// NewTracer returns a Tracer recording into rec at the given level, or
// nil (record nothing) when rec is nil or level is TraceOff.
func NewTracer(rec TraceRecorder, level TraceLevel) *Tracer { return obs.New(rec, level) }

// NewTraceRing returns an in-memory recorder holding at most capacity
// events (<= 0 uses a large default).
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewTraceJSON returns a recorder streaming Chrome trace-event JSON to w
// as events arrive. Close it on every exit path — Close writes the array
// terminator, so even a truncated run leaves a loadable trace. If w is an
// io.Closer it is closed too.
func NewTraceJSON(w io.Writer) TraceRecorder { return obs.NewJSONStream(w) }

// TraceMulti duplicates events to several recorders (e.g. a JSON file
// plus a ring for the CSV and stall views).
func TraceMulti(recs ...TraceRecorder) TraceRecorder { return obs.Multi(recs...) }

// WriteChromeTrace writes recorded events as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WriteTraceCounterCSV pivots recorded counter samples into a per-kernel
// timeline CSV (cycle rows × counter columns: active SMs, L1/L2 hit-rate
// window, NoC occupancy, DRAM queue depth).
func WriteTraceCounterCSV(w io.Writer, events []TraceEvent) error {
	return obs.WriteCounterCSV(w, events)
}

// WriteTraceStallSummary writes the top-n stall reasons aggregated from
// recorded events plus any extra named totals (pass nil for none; n <= 0
// writes all).
func WriteTraceStallSummary(w io.Writer, events []TraceEvent, extra map[string]uint64, n int) error {
	return obs.WriteStallSummary(w, events, extra, n)
}

// Sampling configures the sampled execution mode (Config.Sampling): set
// Enabled and optionally BlockFraction, ReplayStride and Seed; zero
// fields mean the defaults (DefaultSampleFraction, DefaultSampleStride).
type Sampling = sim.Sampling

// Effective default values of a zero-field enabled Sampling.
const (
	// DefaultSampleFraction is the default fraction of each launch's
	// post-first-wave blocks simulated under sampling.
	DefaultSampleFraction = sim.DefaultBlockFraction
	// DefaultSampleStride is the default re-simulation stride of repeated
	// launch fingerprints under sampling.
	DefaultSampleStride = sim.DefaultReplayStride
)

// Config selects how Simulate models the GPU.
type Config struct {
	// Simulator picks the configuration (default Detailed).
	Simulator Simulator
	// HitRates picks SwiftSimMemory's hit-rate source.
	HitRates HitRateSource
	// MaxCycles bounds simulated time per kernel (0 = one billion).
	MaxCycles uint64
	// Scheduler optionally installs a custom warp-scheduling policy per
	// sub-core (nil keeps the GPU configuration's built-in policy).
	Scheduler func(smID, subCore int) WarpPicker
	// SampleBlocks in (0,1) enables wave-aware block-sampled simulation:
	// a prefix of each kernel's blocks is simulated and cycles are
	// extrapolated by wave count. 0 or 1 simulates everything.
	SampleBlocks float64
	// EngineThreads > 1 ticks the simulated SMs (and their private L1s) on
	// that many engine shards concurrently, synchronizing at a
	// deterministic per-cycle barrier: results are byte-identical to a
	// serial run at any value. 0 or 1 — the default — runs serially.
	// SwiftSimMemory always runs serially (its shared analytical memory
	// model leaves no per-SM timed state to shard).
	EngineThreads int
	// EpochCycles > 1 relaxes the parallel barrier to every EpochCycles
	// cycles (bounded-staleness epochs): shards run that many local cycles
	// between synchronizations, with cross-shard memory traffic carried
	// through deterministic staleness queues. Results remain bit-for-bit
	// reproducible at any thread count but may drift from the exact run by
	// a small cycle error (see the committed error envelopes in
	// internal/regress/testdata/epoch). 0 or 1 — the default — keeps the
	// exact protocol; serial assemblies ignore the setting.
	EpochCycles int
	// Sampling enables sampled execution: repeated kernel launches replay
	// memoized outcomes and only a representative subset of each launch's
	// blocks is simulated, with the remainder extrapolated analytically.
	// Deterministic and bit-reproducible at any thread count, but results
	// may drift from the full run (see the committed accuracy envelopes in
	// internal/regress/testdata/sample). Composes with EngineThreads and
	// EpochCycles; incompatible with SampleBlocks and with
	// snapshot/restore. The zero value simulates everything.
	Sampling Sampling
	// SnapshotAt requests a checkpoint at the first quiescent kernel
	// boundary at or after this cycle, written to SnapshotTo. Taking a
	// checkpoint never perturbs the run. Cycle 0 (with SnapshotTo set)
	// checkpoints before the first kernel.
	SnapshotAt uint64
	// SnapshotTo receives the checkpoint stream; nil disables
	// checkpointing.
	SnapshotTo io.Writer
	// RestoreFrom resumes a run from a checkpoint written by an identically
	// configured run. EngineThreads may differ freely between the saving
	// and restoring runs; every other timing-relevant setting (simulator,
	// GPU, app, MaxCycles, sampling, epoch length) must match or the
	// restore fails with sim.ErrSnapshotMismatch.
	RestoreFrom io.Reader
	// Trace records observability events for this simulation (see
	// NewTracer). nil — the default — records nothing and costs nothing.
	Trace *Tracer
}

// Result is the outcome of one simulation (see sim.Result for the field
// documentation).
type Result = sim.Result

// Simulate runs app on gpu under cfg.
func Simulate(app *App, gpu GPU, cfg Config) (*Result, error) {
	return SimulateCtx(context.Background(), app, gpu, cfg)
}

// SimulateCtx is Simulate with cooperative cancellation: canceling ctx (or
// passing one with a deadline) stops the simulation promptly with an error
// wrapping ctx.Err().
func SimulateCtx(ctx context.Context, app *App, gpu GPU, cfg Config) (*Result, error) {
	return sim.RunCtx(ctx, app, gpu, sim.Options{
		Kind:          cfg.Simulator,
		HitRates:      cfg.HitRates,
		MaxCycles:     cfg.MaxCycles,
		Scheduler:     cfg.Scheduler,
		SampleBlocks:  cfg.SampleBlocks,
		Trace:         cfg.Trace,
		EngineThreads: cfg.EngineThreads,
		EpochCycles:   cfg.EpochCycles,
		Sampling:      cfg.Sampling,
		SnapshotAt:    cfg.SnapshotAt,
		SnapshotTo:    cfg.SnapshotTo,
		RestoreFrom:   cfg.RestoreFrom,
	})
}

// SimulateHardware runs the golden "real hardware" reference model used in
// place of physical GPUs for validation experiments (see DESIGN.md).
func SimulateHardware(app *App, gpu GPU) (*Result, error) {
	return hwmodel.Run(app, gpu, hwmodel.DefaultParams())
}

// Job is one simulation for SimulateAll.
type Job struct {
	App *App
	GPU GPU
	Cfg Config
}

// Outcome pairs a job's result with its error. A failed job's Err is a
// *JobError identifying the job; use errors.As/errors.Is to inspect it.
type Outcome struct {
	Result *Result
	Err    error
}

// RunOptions tunes SimulateAllOpts: sweep-wide cancellation (Ctx), per-job
// deadlines (JobTimeout), fail-fast behavior and a progress callback. The
// zero value runs every job to completion with no deadlines.
type RunOptions = runner.Options

// Progress describes one finished job, as delivered to
// RunOptions.OnProgress.
type Progress = runner.Progress

// JobError is the structured error attached to every failed Outcome: it
// carries the job's index, application and GPU names, and — when the
// simulation panicked — the recovered panic value and stack. One bad trace
// fails only its own job, never the whole sweep.
type JobError = runner.JobError

// ErrJobSkipped marks jobs never started because the sweep was canceled
// (context cancellation or FailFast); test with errors.Is.
var ErrJobSkipped = runner.ErrJobSkipped

// SimulateAll runs jobs on a worker pool of the given size (threads <= 0
// uses all CPUs), in job order — the parallel simulation mode of §IV-B2.
func SimulateAll(jobs []Job, threads int) []Outcome {
	return SimulateAllOpts(jobs, threads, RunOptions{})
}

// SimulateAllOpts is SimulateAll with fault-tolerance controls: every job
// runs under panic isolation, opts.Ctx cancels the sweep, opts.JobTimeout
// bounds each job, opts.FailFast stops after the first failure, and
// opts.OnProgress observes completions.
func SimulateAllOpts(jobs []Job, threads int, opts RunOptions) []Outcome {
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		rjobs[i] = runner.Job{App: j.App, GPU: j.GPU, Opts: sim.Options{
			Kind:          j.Cfg.Simulator,
			HitRates:      j.Cfg.HitRates,
			MaxCycles:     j.Cfg.MaxCycles,
			Scheduler:     j.Cfg.Scheduler,
			SampleBlocks:  j.Cfg.SampleBlocks,
			Trace:         j.Cfg.Trace,
			EngineThreads: j.Cfg.EngineThreads,
			EpochCycles:   j.Cfg.EpochCycles,
			Sampling:      j.Cfg.Sampling,
			SnapshotAt:    j.Cfg.SnapshotAt,
			SnapshotTo:    j.Cfg.SnapshotTo,
			RestoreFrom:   j.Cfg.RestoreFrom,
		}}
	}
	outs := runner.Run(rjobs, threads, opts)
	res := make([]Outcome, len(outs))
	for i, o := range outs {
		res[i] = Outcome{Result: o.Result, Err: o.Err}
	}
	return res
}

// WriteMetricsReport formats a result's counters (with derived miss rates)
// to w — the Metrics Gatherer output of §III-C.
func WriteMetricsReport(w io.Writer, res *Result) error {
	g := metrics.New()
	for name, v := range res.Metrics {
		g.Set(name, v)
	}
	return g.Report(w)
}
