# Swift-Sim development targets. `make verify` is the gate every change
# must pass; see .claude/skills/verify/SKILL.md and README.md for the
# golden-fixture workflow.

GO ?= go

.PHONY: verify tier1 lint golden fuzz-smoke distributed-e2e bench bench-quick benchcmp profile update-golden envelopes

# verify = tier-1 + lint + the golden regression corpus + a fuzz smoke of
# both parsers + the multi-worker lease-plane scenarios. This is the full
# pre-commit gate.
verify: tier1 lint golden fuzz-smoke distributed-e2e

# tier1 is the repo's baseline check (ROADMAP.md): everything builds,
# vets, and tests green, with the race detector on the concurrent
# packages.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/runner/... ./internal/engine/... ./internal/cache/... ./internal/noc/... ./internal/dram/... ./internal/obs/... ./internal/service/... ./internal/sim/... ./internal/snap/... ./cmd/swiftsimd/... ./cmd/swiftsim-worker/...
	$(GO) test -race -run 'TestEpoch|TestSnapshot|TestSample' ./internal/regress/

# lint enforces gofmt and go vet, and additionally runs staticcheck and
# govulncheck when they are installed (they are optional: the build must
# stay dependency-free on machines without them).
lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

# golden re-checks the committed 60-case fixture corpus only (fast drift
# check without the rest of the suite).
golden:
	$(GO) test -run Golden ./internal/regress/...

# fuzz-smoke runs each fuzz target for 10s — long enough to catch easy
# parser regressions, short enough for every commit.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseTrace -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz=FuzzLoadConfig -fuzztime=10s ./internal/config/
	$(GO) test -fuzz=FuzzParseSnapshot -fuzztime=10s ./internal/sim/

# distributed-e2e runs the multi-worker lease-plane scenarios — daemon +
# worker loops with fault injection (worker killed mid-job, lease expiry
# and requeue, fencing rejections) — race-on and repeated, as their own
# verify stage.
distributed-e2e:
	$(GO) test -race -count=2 -run 'TestDistributed' ./internal/service/

# update-golden regenerates the golden fixtures after an intended metrics
# change. Review the fixture diff like any other code change.
update-golden:
	$(GO) test -run Golden ./internal/regress/ -update

# bench-quick smoke-runs every benchmark once (compile + no-crash check).
bench-quick:
	$(GO) test -bench . -benchtime 1x ./...

# bench records the perf-gate benchmarks (the ones with a committed
# baseline) with enough repetitions for stable medians. -benchmem adds the
# B/op and allocs/op columns that feed the allocation ceilings below.
# Writes bench.txt.
BENCH_PKGS = . ./internal/engine/
BENCH_FILTER = 'BenchmarkSimulatorThroughput|BenchmarkGoldenCorpus|BenchmarkEngineActiveSet|BenchmarkObsOff|BenchmarkEngineParallel|BenchmarkEngineRelaxed|BenchmarkEngineSampled|BenchmarkEngineShardedTick'
bench:
	$(GO) test -run '^$$' -bench $(BENCH_FILTER) -benchmem -benchtime 2x -count 5 $(BENCH_PKGS) | tee bench.txt

# benchcmp compares a fresh `make bench` run against the committed
# baseline (bench_baseline.txt) and fails if performance regressed below
# 0.9x of it. Regenerate the baseline intentionally with
# `make bench && cp bench.txt bench_baseline.txt`.
#
# Sampled execution must keep its speedup floor on every host: the
# corpus=off/corpus=on pair of BenchmarkEngineSampled runs serial single
# simulations, so unlike the sharding floors below it does not depend on
# core count.
#
# Two gates hold on every host regardless of core count:
#   - threads=2 must never lose to threads=1 (floor 1.0x). The spin-park
#     barrier makes sharding near-free on multi-core hosts, and on a
#     single-core host the engine falls back to the serial tick path, so
#     there is no configuration where turning sharding on should cost.
#   - the sharded steady-state tick allocates nothing: 0 allocs/op ceiling
#     on BenchmarkEngineShardedTick (which forces workers up, so it
#     measures the staged arenas and barrier on any host).
#
# On hosts with >= 4 cores it additionally requires the sharded engine to
# reach the committed intra-simulation speedup floors — exact mode
# (threads=4 at least 2.0x over threads=1, raised from PR5's 1.8x by the
# spin-park barrier) and relaxed-epoch mode (k=8 at least 1.15x over k=1
# at the same thread count); on smaller hosts the floors are unmeasurable
# (the shards serialize on the few cores available), so those gates are
# skipped.
benchcmp: bench
	$(GO) run ./cmd/benchcmp -gate 0.9 bench_baseline.txt bench.txt
	$(GO) run ./cmd/benchcmp -within 'BenchmarkEngineSampled/corpus=off,BenchmarkEngineSampled/corpus=on,3.0' bench_baseline.txt bench.txt
	$(GO) run ./cmd/benchcmp -within 'BenchmarkEngineParallel/threads=1,BenchmarkEngineParallel/threads=2,1.0' bench_baseline.txt bench.txt
	$(GO) run ./cmd/benchcmp -metric allocs/op \
		-max 'BenchmarkEngineShardedTick/shards=2,0' \
		-max 'BenchmarkEngineShardedTick/shards=4,0' \
		bench_baseline.txt bench.txt
	@if [ "$$(nproc)" -ge 4 ]; then \
		$(GO) run ./cmd/benchcmp -within 'BenchmarkEngineParallel/threads=1,BenchmarkEngineParallel/threads=4,2.0' bench_baseline.txt bench.txt; \
		$(GO) run ./cmd/benchcmp -within 'BenchmarkEngineRelaxed/k=1,BenchmarkEngineRelaxed/k=8,1.15' bench_baseline.txt bench.txt; \
	else \
		echo "benchcmp: skipping engine speedup floors (nproc $$(nproc) < 4)"; \
	fi

# profile captures cpu and heap profiles of the two benchmarks that
# bracket the engine's hot path — the golden corpus (end-to-end serial
# mix) and the sharded Detailed simulation — into prof/, with the test
# binaries kept alongside for symbolization:
#   go tool pprof prof/parallel.test prof/parallel.cpu.pprof
# EXPERIMENTS.md documents how the committed numbers were derived from
# these profiles. prof/ is gitignored; profiles are host artifacts.
profile:
	mkdir -p prof
	$(GO) test -run '^$$' -bench BenchmarkGoldenCorpus -benchtime 1x \
		-cpuprofile prof/golden.cpu.pprof -memprofile prof/golden.mem.pprof \
		-o prof/golden.test .
	$(GO) test -run '^$$' -bench BenchmarkEngineParallel -benchtime 1x \
		-cpuprofile prof/parallel.cpu.pprof -memprofile prof/parallel.mem.pprof \
		-o prof/parallel.test .

# envelopes regenerates every committed accuracy envelope — the relaxed-
# epoch drift fixtures and the sampled-execution error fixtures — in one
# pass after an intended accuracy change. Review the fixture diffs like
# golden diffs.
envelopes:
	$(GO) test -run 'TestEpochRelaxedEnvelope|TestSampleEnvelope' ./internal/regress/ -update
